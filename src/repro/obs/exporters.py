"""Exporters: JSONL, Chrome ``trace_event`` JSON, and a summary table.

* **JSONL** — one :class:`~repro.obs.tracer.TraceEvent` dict per line; the
  machine-readable archival format (diff-able, streamable, greppable).
* **Chrome trace** — ``{"traceEvents": [...]}`` with the standard
  ``name``/``cat``/``ph``/``ts``/``dur``/``pid``/``tid`` fields; open it
  at https://ui.perfetto.dev or ``chrome://tracing``.  Our events are
  already phase-tagged (``X`` spans, ``i`` instants, ``C`` counters), so
  the export is mostly a serialization, plus viewer niceties: instant
  events get a scope (``"s": "t"``) and counter events' args must be flat
  numeric dicts (enforced here).
* **summary table** — per-category / per-name counts and span-time
  totals, the "where did the time go" one-pager.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, TextIO, Union

from repro.obs.tracer import (
    PH_COMPLETE,
    PH_COUNTER,
    PH_INSTANT,
    TraceEvent,
    Tracer,
)


def _events_of(source: Union[Tracer, Sequence[TraceEvent]]) -> Sequence[TraceEvent]:
    # Duck-typed on purpose: RecordingTracer and FlightRecorder both
    # expose ``events`` (+ ``flush_counts``); a disabled tracer exposes
    # neither and exports nothing.
    events = getattr(source, "events", None)
    if events is not None:
        flush = getattr(source, "flush_counts", None)
        if flush is not None:
            flush()
        return source.events
    if isinstance(source, Tracer):
        return ()
    return source


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def write_jsonl(source: Union[Tracer, Sequence[TraceEvent]], path: str) -> int:
    """Write one JSON object per event to ``path``.  Returns the number of
    events written."""
    events = _events_of(source)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), default=repr))
            handle.write("\n")
    return len(events)


def events_from_jsonl(lines: Iterable[str]) -> List[TraceEvent]:
    events = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a JSONL event log back into :class:`TraceEvent` objects."""
    with open(path, "r", encoding="utf-8") as handle:
        return events_from_jsonl(handle)


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def _chrome_event(event: TraceEvent) -> Dict:
    data = event.to_dict()
    if event.ph == PH_INSTANT:
        data["s"] = "t"  # thread-scoped instant marker
    if event.ph == PH_COUNTER:
        # Counter tracks render args as stacked numeric series.
        data["args"] = {
            key: value
            for key, value in (event.args or {}).items()
            if isinstance(value, (int, float))
        }
    return data


def to_chrome_trace(source: Union[Tracer, Sequence[TraceEvent]]) -> Dict:
    """The ``trace_event`` JSON object for ``source``'s events."""
    events = _events_of(source)
    return {
        "traceEvents": [_chrome_event(e) for e in events],
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs (push/pull transactions)"},
    }


def write_chrome_trace(source: Union[Tracer, Sequence[TraceEvent]], path: str) -> int:
    events = _events_of(source)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(events), handle, default=repr)
    return len(events)


# ---------------------------------------------------------------------------
# Summary table
# ---------------------------------------------------------------------------


def summary_table(source: Union[Tracer, Sequence[TraceEvent]]) -> str:
    """Aggregate events into a fixed-width table: per (category, name),
    the event count and — for spans — total and mean duration in µs."""
    events = _events_of(source)
    rows: Dict[tuple, Dict[str, float]] = {}
    for event in events:
        row = rows.setdefault(
            (event.cat, event.name), {"count": 0, "span_us": 0.0, "spans": 0}
        )
        row["count"] += 1
        if event.ph == PH_COMPLETE:
            row["span_us"] += event.dur
            row["spans"] += 1
    lines = [
        f"{'category':<10} {'event':<28} {'count':>8} {'total_us':>12} {'mean_us':>10}"
    ]
    lines.append("-" * len(lines[0]))
    for (cat, name), row in sorted(rows.items()):
        if row["spans"]:
            total = f"{row['span_us']:.1f}"
            mean = f"{row['span_us'] / row['spans']:.2f}"
        else:
            total = mean = "-"
        lines.append(
            f"{cat:<10} {name:<28} {int(row['count']):>8} {total:>12} {mean:>10}"
        )
    return "\n".join(lines)
