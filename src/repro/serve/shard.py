"""One shard of the ``repro serve`` daemon: a PUSH/PULL runtime behind a
work queue.

:class:`ShardState` is the synchronous, I/O-free core — it owns one
:class:`~repro.tm.base.Runtime` over a :class:`~repro.specs.product.
ProductSpec` of the four registered spec spaces and exposes exactly three
entry points:

* :meth:`ShardState.execute_wave` — a batch of *single-shard*
  transactions, run to commit-or-requeue through the normal
  :class:`~repro.tm.base.TxStepper` + scheduler machinery (the same
  machinery every experiment uses, so daemon traffic exercises the same
  code paths the checkers verify);
* :meth:`ShardState.prepare` / :meth:`ShardState.commit_prepared` /
  :meth:`ShardState.abort_prepared` — the participant half of the
  cross-shard 2PC.  *Prepare* APPs and PUSHes the sub-transaction's
  operations (encounter-style eager publication) and parks the thread;
  the global CMT rule is only fired by *commit*, so the paper's commit
  criteria are what make the second phase safe.  A parked prepared
  transaction's pushed-uncommitted entries block conflicting PUSHes on
  the shard via the ordinary push criterion — 2PC "locks" are just
  uncommitted global-log entries;
* :meth:`ShardState.run_conformance` — the existing chaos conformance
  gate (serializability / opacity / clean-aborts / quiescence) over the
  shard's committed history.  The daemon runs it *windowed*: every
  ``conformance_window`` commits the gate runs and, when clean, the
  history rolls over into a :class:`~repro.core.spec.RebasedStateSpec`
  (the same compaction move as ``Runtime.maybe_compact``, but gated on a
  verified window rather than blind).  On failure the armed per-shard
  :class:`~repro.obs.flight.FlightRecorder` auto-dumps its black box.

The asyncio wrappers at the bottom (:func:`shard_server`,
:func:`run_shard_worker`) put a :class:`ShardState` behind a unix-socket
frame protocol so shards can run as separate *processes* — on a
multicore box N shard workers give real parallelism, which pure
in-process asyncio cannot (one GIL).  The daemon also drives ShardState
inline (same event loop) for tests and tiny tiers.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import TMAbort
from repro.core.history import TxRecord
from repro.core.language import call, tx
from repro.core.machine import Machine
from repro.core.spec import RebasedStateSpec, StateSpec
from repro.faults.conformance import conformance_failures
from repro.faults.recovery import make_policy
from repro.obs.flight import FlightRecorder, maybe_dump
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.runtime.harness import ExperimentResult
from repro.serve.framing import read_frame, write_frame
from repro.serve.sharding import make_shard_scheduler, shard_seed, validate_op
from repro.specs import BankSpec, CounterSpec, KVMapSpec, QueueSpec
from repro.specs.product import ProductSpec
from repro.tm import ALL_ALGORITHMS
from repro.tm.base import Runtime, StepStatus, TxStepper, record_commit_view


def make_serve_spec() -> ProductSpec:
    """The key-space every shard serves: one ProductSpec over the four
    registered spec spaces (cross-component operations always commute,
    so kvmap traffic never conflicts with bank traffic)."""
    return ProductSpec(
        {
            "kvmap": KVMapSpec(),
            "counter": CounterSpec(),
            "bank": BankSpec(),
            "queue": QueueSpec(),
        }
    )


@dataclass(frozen=True)
class ShardConfig:
    """Everything a shard needs, JSON-safe so it crosses the process
    boundary to :func:`run_shard_worker` unchanged."""

    index: int = 0
    shards: int = 1
    strategy: str = "encounter"
    scheduler: str = "random"
    root_seed: int = 0
    #: in-wave TxStepper retries before the txn is bounced back to the
    #: queue (a requeue lets parked 2PC commits land in between).  Sized
    #: for the worst case of a whole batch contending on one hot key:
    #: the loser of every round must survive ~batch aborts to serialize.
    wave_retries: int = 64
    #: total waves a txn may be requeued before a permanent abort reply
    max_attempts: int = 25
    #: commits between windowed conformance checks (+ history rollover).
    #: Also the effective bound on committed-log length, which every
    #: push/pull ``allowed`` check replays — keep it modest.
    conformance_window: int = 64
    flight_dir: Optional[str] = None
    #: segment directory for the durable global log (None = in-memory
    #: only, the pre-durability behaviour)
    durable_dir: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "shards": self.shards,
            "strategy": self.strategy,
            "scheduler": self.scheduler,
            "root_seed": self.root_seed,
            "wave_retries": self.wave_retries,
            "max_attempts": self.max_attempts,
            "conformance_window": self.conformance_window,
            "flight_dir": self.flight_dir,
            "durable_dir": self.durable_dir,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardConfig":
        return cls(**data)


@dataclass
class WaveOutcome:
    """Per-transaction result of one :meth:`ShardState.execute_wave`."""

    txn_id: str
    ok: bool
    results: Tuple[Any, ...] = ()
    retry: bool = False
    error: Optional[str] = None
    kind: Optional[str] = None
    attempts: int = 1

    def to_reply(self) -> Dict[str, Any]:
        if self.ok:
            return {"ok": True, "results": list(self.results)}
        return {"ok": False, "error": self.error, "kind": self.kind}


class ShardState:
    """One shard's transactional core (synchronous; see module doc)."""

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        self.tracer = (
            FlightRecorder(auto_dump_dir=config.flight_dir)
            if config.flight_dir
            else NULL_TRACER
        )
        # compact_every=None: compaction happens only through the
        # *verified* windowed-conformance rollover below, never blind.
        self.runtime = Runtime(
            make_serve_spec(), compact_every=None, tracer=self.tracer
        )
        self.algorithm = ALL_ALGORITHMS[config.strategy]()
        self.scheduler = make_shard_scheduler(
            config.scheduler, config.root_seed, config.index
        )
        self.recovery = make_policy("default", seed=shard_seed(config.root_seed, config.index))
        self.registry = MetricsRegistry()
        #: attached :class:`~repro.durable.store.SegmentStore`, or None.
        #: Construction never opens it — ``repro.durable.recovery.
        #: open_durable_shard`` is the only place a store meets a shard,
        #: so a durable shard always recovers (and re-verifies) first.
        self.durable = None
        #: the last :class:`~repro.durable.recovery.RecoveryReport`
        self.last_recovery = None
        #: txn_id → (tid, history record, wire ops) for parked prepared
        #: sub-txns; the wire ops feed the durable commit record
        self.prepared: Dict[str, Tuple[int, TxRecord, List[List[Any]]]] = {}
        #: sticky per-shard conformance verdicts
        self.conformance_failure_log: List[str] = []
        self.flight_dumps: List[str] = []
        self.windows_checked = 0
        self.commits_gated = 0
        self._commits_since_check = 0
        self._job_counter = 0
        self._waves = 0

    # -- small helpers ---------------------------------------------------------

    def _program(self, ops: Sequence[Sequence]):
        calls = []
        for op in ops:
            space, method, args = validate_op(op)
            calls.append(call(f"{space}.{method}", *args))
        return tx(*calls)

    def _next_job(self) -> int:
        self._job_counter += 1
        return self._job_counter

    def _views(self, tid: int):
        thread = self.runtime.machine.thread(tid)
        own = thread.local.own_ops()
        observed = thread.local.all_ops()
        pulled_uncommitted = tuple(
            op
            for op in thread.local.pulled_ops()
            if (entry := self.runtime.machine.global_log.entry_for(op)) is not None
            and not entry.is_committed
        )
        return own, observed, pulled_uncommitted

    def _count(self, name: str, delta: int = 1) -> None:
        self.registry.counter(name).inc(delta)

    # -- single-shard waves -----------------------------------------------------

    def execute_wave(self, items: Sequence[Dict[str, Any]]) -> List[WaveOutcome]:
        """Run a batch of single-shard transactions through TxSteppers
        under the shard scheduler.  Each item is ``{"id", "ops",
        "attempts"}``; an item whose stepper exhausts its in-wave retries
        is *requeued* (``retry=True``) rather than aborted outright —
        bounded by ``max_attempts`` across waves — because the conflict
        may be with a parked prepared 2PC sub-transaction that can only
        resolve between waves."""
        rt = self.runtime
        self._waves += 1
        self._count("serve.waves")
        # A wave sharing the shard with parked prepared 2PC sub-txns is
        # *stalled*: conflicting steppers cannot win until phase 2 lands,
        # which only happens between waves.  Bail out of retries fast and
        # do not charge the wave against the requeue budget — otherwise a
        # slow coordinator starves every transaction behind its locks.
        stalled = bool(self.prepared)
        retries = min(self.config.wave_retries, 4) if stalled else self.config.wave_retries
        pairs: List[Tuple[Dict[str, Any], TxStepper]] = []
        outcomes: List[WaveOutcome] = []
        for item in items:
            attempts = int(item.get("attempts", 0)) + (0 if stalled else 1)
            try:
                program = self._program(item["ops"])
            except ValueError as exc:
                outcomes.append(
                    WaveOutcome(
                        item["id"], False, error=str(exc), kind="protocol",
                        attempts=attempts,
                    )
                )
                self._count("serve.txn.rejected")
                continue
            stepper = TxStepper(
                self.algorithm,
                rt,
                program,
                max_retries=retries,
                job_id=self._next_job(),
                recovery=self.recovery,
            )
            pairs.append(({**item, "attempts": attempts}, stepper))
        if pairs:
            self.scheduler.run([stepper for _item, stepper in pairs])
        committed = 0
        durable_batch: List[Tuple[Any, str, List, List]] = []
        for item, stepper in pairs:
            attempts = item["attempts"]
            if stepper.status is StepStatus.COMMITTED:
                own = getattr(stepper.record, "_commit_own", ())
                results = tuple(op.ret for op in own)
                outcomes.append(
                    WaveOutcome(
                        item["id"], True, results=results, attempts=attempts,
                    )
                )
                committed += 1
                if self.durable is not None:
                    durable_batch.append(
                        (stepper.record.end_time, item["id"],
                         [list(op) for op in item["ops"]], list(results))
                    )
                self._count("serve.txn.committed")
                self._count("serve.txn.wave_aborts", stepper.stats.aborts)
            else:
                # Permanently aborted within the wave: the stepper left the
                # rolled-back thread parked in the machine — drop it.
                tid = stepper.tid
                if tid is not None:
                    rt.machine = rt.machine.drop_thread(tid)
                    rt.tid_to_job.pop(tid, None)
                self._count("serve.txn.wave_aborts", stepper.stats.aborts)
                if attempts < self.config.max_attempts:
                    outcomes.append(
                        WaveOutcome(
                            item["id"], False, retry=True, attempts=attempts,
                            error="wave conflict", kind="conflict",
                        )
                    )
                    self._count("serve.txn.requeued")
                else:
                    outcomes.append(
                        WaveOutcome(
                            item["id"], False, attempts=attempts,
                            error=f"aborted after {attempts} waves",
                            kind="conflict",
                        )
                    )
                    self._count("serve.txn.aborted")
        self._commits_since_check += committed
        if durable_batch:
            # Group commit: one record per committed txn in history
            # commit order (end_time is the serialization order the
            # commit criteria certified), then a single fsync.  Acks
            # leave this method only after that fsync returns.
            for _when, txn_id, ops, results in sorted(
                durable_batch, key=lambda row: row[0]
            ):
                self.durable.append(
                    {"t": "commit", "txn": txn_id, "ops": ops,
                     "results": results}
                )
            self.durable.sync()
        return outcomes

    # -- 2PC participant half ---------------------------------------------------

    def prepare(self, txn_id: str, ops: Sequence[Sequence]) -> Dict[str, Any]:
        """Phase 1: APP + PUSH every operation of the sub-transaction,
        then park the thread with its effects *uncommitted* in the global
        log.  Success promises the later CMT cannot fail: criterion (ii)
        holds because everything is pushed, criterion (iii) because
        :meth:`Runtime.pull_relevant` only ever pulls committed entries."""
        rt = self.runtime
        if txn_id in self.prepared:
            return {"ok": False, "error": f"txn {txn_id!r} already prepared",
                    "kind": "protocol"}
        try:
            program = self._program(ops)
        except ValueError as exc:
            self._count("serve.txn.rejected")
            return {"ok": False, "error": str(exc), "kind": "protocol"}
        rt.machine, tid = rt.machine.spawn(program)
        record = rt.history.begin(tid)
        rt.active_tids.add(tid)
        rt.tid_to_job[tid] = self._next_job()
        try:
            remaining = len(self.algorithm.resolve_steps(program))
            for _ in range(remaining):
                choices = sorted(rt.machine.app_choices(tid), key=repr)
                if not choices:
                    break
                call_node = choices[0][0]
                keys = rt.spec.footprint(call_node.method, call_node.args)
                rt.pull_relevant(tid, keys)
                op = self.algorithm.app_call(rt, tid, 0)
                self.algorithm.push_op(rt, tid, op)
        except TMAbort as abort:
            own, observed, pulled_uncommitted = self._views(tid)
            rt.rollback(tid)
            rt.history.abort(
                record, abort.reason, observed, pulled_uncommitted,
                kind=abort.kind,
            )
            rt.active_tids.discard(tid)
            rt.machine = rt.machine.drop_thread(tid)
            rt.tid_to_job.pop(tid, None)
            self._count("serve.2pc.prepare_conflict")
            return {"ok": False, "error": abort.reason, "kind": abort.kind.value}
        results = [op.ret for op in rt.machine.thread(tid).local.own_ops()]
        self.prepared[txn_id] = (tid, record, [list(op) for op in ops])
        if self.durable is not None:
            # Persist the prepare *before* the ack: a coordinator that
            # hears "prepared" may decide commit, so this shard must
            # still know about the sub-txn after a crash.
            self.durable.append(
                {"t": "prepare", "txn": txn_id,
                 "ops": [list(op) for op in ops], "results": list(results)}
            )
            self.durable.sync()
        self.registry.gauge("serve.prepared").set(len(self.prepared))
        self._count("serve.2pc.prepared")
        return {"ok": True, "results": results}

    def commit_prepared(self, txn_id: str) -> Dict[str, Any]:
        """Phase 2 (commit): fire CMT on the parked thread."""
        rt = self.runtime
        entry = self.prepared.pop(txn_id, None)
        if entry is None:
            return {"ok": False, "error": f"txn {txn_id!r} not prepared",
                    "kind": "protocol"}
        tid, record, wire_ops = entry
        record_commit_view(rt, tid, record)
        rt.apply("cmt", tid)
        rt.history.commit(
            record,
            record._commit_own,
            record._commit_observed,
            record._commit_pulled_uncommitted,
        )
        rt.active_tids.discard(tid)
        rt.dependencies.on_commit(tid)
        rt.machine = rt.machine.end_thread(tid)
        rt.tid_to_job.pop(tid, None)
        if self.durable is not None:
            self.durable.append(
                {"t": "commit", "txn": txn_id, "ops": wire_ops,
                 "results": [op.ret for op in record._commit_own],
                 "via": "2pc"}
            )
            self.durable.sync()
        self.registry.gauge("serve.prepared").set(len(self.prepared))
        self._count("serve.2pc.committed")
        self._commits_since_check += 1
        return {"ok": True}

    def abort_prepared(self, txn_id: str, reason: str = "coordinator abort") -> Dict[str, Any]:
        """Phase 2 (abort): roll the parked thread back and discard it."""
        rt = self.runtime
        entry = self.prepared.pop(txn_id, None)
        if entry is None:
            return {"ok": False, "error": f"txn {txn_id!r} not prepared",
                    "kind": "protocol"}
        tid, record, _wire_ops = entry
        own, observed, pulled_uncommitted = self._views(tid)
        rt.dependencies.on_abort(tid)
        rt.dependencies.clear(tid)
        rt.rollback(tid)
        rt.history.abort(record, reason, observed, pulled_uncommitted)
        rt.active_tids.discard(tid)
        rt.machine = rt.machine.drop_thread(tid)
        rt.tid_to_job.pop(tid, None)
        if self.durable is not None:
            # No sync: aborts are advisory (recovery presumes abort for
            # any undecided prepare), so they ride the next batch.
            self.durable.append(
                {"t": "abort", "txn": txn_id, "reason": reason}
            )
        self.registry.gauge("serve.prepared").set(len(self.prepared))
        self._count("serve.2pc.aborted")
        return {"ok": True}

    # -- conformance gate + verified rollover -----------------------------------

    def _result_shim(self) -> ExperimentResult:
        rt = self.runtime
        return ExperimentResult(
            algorithm=self.algorithm.name,
            commits=rt.history.commit_count(),
            aborts=rt.history.abort_count(),
            permanently_aborted=0,
            total_steps=sum(rt.rule_counts.values()),
            rule_counts=dict(rt.rule_counts),
            serialization=None,
            runtime=rt,
        )

    def maybe_checkpoint(self) -> Optional[Dict[str, Any]]:
        """Between waves, with no parked 2PC sub-txns: run the windowed
        conformance gate and, when clean, roll the verified history over
        into a rebased spec (bounded memory for unbounded uptime)."""
        if self._commits_since_check < self.config.conformance_window:
            return None
        if self.prepared or self.runtime.active_tids:
            return None
        return self.run_conformance(rollover=True)

    def run_conformance(self, rollover: bool = False) -> Dict[str, Any]:
        """Run the chaos conformance gate over the current history window.
        Returns a JSON-safe verdict; on failure arms the flight dump."""
        rt = self.runtime
        failures, opacity_checked = conformance_failures(
            self.algorithm, rt.spec, self._result_shim()
        )
        window_commits = rt.history.commit_count()
        self.windows_checked += 1
        self.commits_gated += window_commits
        verdict = {
            "ok": not failures,
            "shard": self.config.index,
            "window_commits": window_commits,
            "windows_checked": self.windows_checked,
            "commits_gated": self.commits_gated,
            "opacity_checked": opacity_checked,
            "failures": [str(f) for f in failures],
            "sticky_failures": list(self.conformance_failure_log),
        }
        self._count("serve.conformance.windows")
        if failures:
            self.conformance_failure_log.extend(str(f) for f in failures)
            verdict["sticky_failures"] = list(self.conformance_failure_log)
            self._count("serve.conformance.failures", len(failures))
            dump = maybe_dump(
                self.tracer,
                label=f"serve-shard{self.config.index}",
                reason="conformance",
                meta={"failures": [str(f) for f in failures]},
            )
            if dump:
                self.flight_dumps.append(dump)
                verdict["flight_dump"] = dump
            return verdict
        if rollover:
            self._rollover()
        return verdict

    def _rollover(self) -> None:
        """Replay the verified committed log into a rebased spec and
        restart with an empty history — ``Runtime.maybe_compact``'s move,
        but only ever after a clean gate."""
        rt = self.runtime
        if rt.active_tids or self.prepared:
            return
        if any(t.local.entries for t in rt.machine.threads):
            return
        if any(not e.is_committed for e in rt.machine.global_log):
            return
        base = rt.spec
        if not isinstance(base, StateSpec):
            return
        state = base.replay(rt.machine.global_log.all_ops())
        if state is None:  # pragma: no cover - gate just verified the log
            raise RuntimeError("verified committed log is not allowed")
        rebased = RebasedStateSpec(base, state)
        rt.spec = rebased
        rt.machine = Machine(
            rebased,
            threads=rt.machine.threads,
            ids=rt.machine.ids,
            check_gray_criteria=rt.machine.check_gray_criteria,
            tracer=self.tracer,
        )
        rt.history = type(rt.history)()
        self._commits_since_check = 0
        self._count("serve.conformance.rollovers")
        if self.durable is not None:
            # The rollover state was just verified by the gate — exactly
            # what a recovery wants to start from.  Checkpoint it and let
            # the store drop the segments it covers.
            from repro.durable.records import encode_state

            self.durable.write_snapshot(
                encode_state(state),
                meta={
                    "shard": self.config.index,
                    "strategy": self.config.strategy,
                    "windows_checked": self.windows_checked,
                    "commits_gated": self.commits_gated,
                },
            )

    # -- introspection ----------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        self.registry.gauge("serve.machine.threads").set(len(self.runtime.machine.threads))
        self.registry.gauge("serve.prepared").set(len(self.prepared))
        return {
            "counters": dict(self.registry.counter_values()),
            "gauges": {
                name: metric.value
                for (name, _labels), metric in self.registry._gauges.items()
            },
            # Raw samples, not summaries: the daemon merges them into its
            # own registry so percentiles aggregate correctly across the
            # process boundary (serve.fsync.us lives shard-side).
            "histograms": {
                name: list(metric.samples)
                for (name, _labels), metric in self.registry._histograms.items()
            },
        }

    def stats(self) -> Dict[str, Any]:
        rt = self.runtime
        return {
            "shard": self.config.index,
            "strategy": self.config.strategy,
            "waves": self._waves,
            "window_commits": rt.history.commit_count(),
            "commits_gated": self.commits_gated,
            "windows_checked": self.windows_checked,
            "prepared": len(self.prepared),
            "threads": len(rt.machine.threads),
            "global_log": len(rt.machine.global_log),
            "conformance_failures": list(self.conformance_failure_log),
            "flight_dumps": list(self.flight_dumps),
            "durable": {
                "directory": self.durable.directory,
                "last_lsn": self.durable.last_lsn,
                "segments": len(self.durable.segment_paths()),
                "recovery": self.last_recovery.to_dict()
                if self.last_recovery is not None
                else None,
            }
            if self.durable is not None
            else None,
        }


# -- process-mode wrapper: ShardState behind a unix-socket frame server --------


async def shard_server(state: ShardState, socket_path: str) -> None:
    """Serve one ShardState over a unix socket speaking the frame
    protocol.  One request frame in, one reply frame out; requests are
    processed strictly in arrival order per connection (the daemon opens
    a single connection per shard, so the shard's arrival order *is* the
    daemon's dispatch order — determinism is preserved across the
    process boundary)."""
    loop = asyncio.get_running_loop()
    stop = loop.create_future()

    async def handle(reader, writer):
        try:
            while True:
                request = await read_frame(reader)
                if request is None:
                    break
                reply = handle_shard_request(state, request)
                await write_frame(writer, reply)
                if request.get("method") == "shutdown" and not stop.done():
                    stop.set_result(None)
                    break
        finally:
            writer.close()

    server = await asyncio.start_unix_server(handle, path=socket_path)
    async with server:
        await stop


def handle_shard_request(state: ShardState, request: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one shard RPC (shared by process mode and tests)."""
    method = request.get("method")
    rid = request.get("id")
    try:
        if method == "wave":
            outcomes = state.execute_wave(request["txns"])
            checkpoint = state.maybe_checkpoint()
            return {
                "id": rid,
                "ok": True,
                "outcomes": [
                    {
                        "id": o.txn_id,
                        "retry": o.retry,
                        "attempts": o.attempts,
                        **o.to_reply(),
                    }
                    for o in outcomes
                ],
                "checkpoint": checkpoint,
            }
        if method == "prepare":
            return {"id": rid, **state.prepare(request["txn"], request["ops"])}
        if method == "commit":
            return {"id": rid, **state.commit_prepared(request["txn"])}
        if method == "abort":
            return {"id": rid, **state.abort_prepared(
                request["txn"], request.get("reason", "coordinator abort"))}
        if method == "conformance":
            return {"id": rid, **state.run_conformance(
                rollover=bool(request.get("rollover", False)))}
        if method == "metrics":
            return {"id": rid, "ok": True, "metrics": state.metrics_snapshot()}
        if method == "stats":
            return {"id": rid, "ok": True, "stats": state.stats()}
        if method == "shutdown":
            return {"id": rid, "ok": True}
        return {"id": rid, "ok": False, "error": f"unknown shard method {method!r}",
                "kind": "protocol"}
    except Exception as exc:  # noqa: BLE001 - shard must answer, not die
        return {"id": rid, "ok": False, "error": f"{type(exc).__name__}: {exc}",
                "kind": "internal"}


def run_shard_worker(config_dict: Dict[str, Any], socket_path: str) -> None:
    """Process entry point (multiprocessing target): build the shard and
    serve it on ``socket_path`` until a shutdown request.  A configured
    ``durable_dir`` routes construction through the recovery path, so a
    restarted worker replays and re-verifies its log before serving."""
    config = ShardConfig.from_dict(config_dict)
    if config.durable_dir:
        from repro.durable.recovery import open_durable_shard

        state = open_durable_shard(config)
    else:
        state = ShardState(config)
    try:
        asyncio.run(shard_server(state, socket_path))
    finally:
        if state.durable is not None:
            state.durable.close()
