"""Asyncio client for the ``repro serve`` daemon.

:class:`ServeClient` multiplexes any number of logical sessions over a
*bounded* pool of TCP connections: requests carry monotone correlation
ids, a per-connection reader task resolves them to futures, and replies
may arrive out of order (the daemon answers transactions as they
finish).  This is what lets ``repro loadgen`` simulate tens of thousands
of logical sessions with a handful of sockets.

The synchronous convenience wrapper :func:`call_daemon` underpins the
``repro assert-*`` CI subcommands (the rdc-cli daemon-RPC pattern): one
connection, one RPC, exit-code semantics handled by the CLI layer.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.framing import read_frame, write_frame


class ServeError(RuntimeError):
    """The daemon answered ``ok: false`` (carries the reply)."""

    def __init__(self, reply: Dict[str, Any]):
        super().__init__(reply.get("error", "daemon error"))
        self.reply = reply
        self.kind = reply.get("kind")


class ServeClient:
    """A connection pool speaking the frame protocol; see module doc."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7411, pool: int = 4):
        self.host = host
        self.port = port
        self.pool = max(1, pool)
        self._connections: List[Any] = []  # (reader, writer, write_lock)
        self._pending: Dict[int, asyncio.Future] = {}
        self._readers: List[asyncio.Task] = []
        self._ids = itertools.count(1)
        self._rr = itertools.count()
        self._closed = False

    # -- lifecycle --------------------------------------------------------------

    async def connect(self, retries: int = 40, delay: float = 0.25) -> "ServeClient":
        """Open the pool, waiting for the daemon to come up (CI starts
        daemon and clients concurrently)."""
        last: Optional[Exception] = None
        for _ in range(retries):
            try:
                while len(self._connections) < self.pool:
                    reader, writer = await asyncio.open_connection(self.host, self.port)
                    conn = (reader, writer, asyncio.Lock())
                    self._connections.append(conn)
                    self._readers.append(
                        asyncio.ensure_future(self._read_loop(reader))
                    )
                return self
            except (ConnectionError, OSError) as exc:
                last = exc
                await asyncio.sleep(delay)
        raise ConnectionError(
            f"daemon at {self.host}:{self.port} unreachable: {last}"
        )

    async def close(self) -> None:
        self._closed = True
        for task in self._readers:
            task.cancel()
        await asyncio.gather(*self._readers, return_exceptions=True)
        for _reader, writer, _lock in self._connections:
            writer.close()
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ConnectionError("client closed"))
        self._pending.clear()

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- plumbing ---------------------------------------------------------------

    async def _read_loop(self, reader) -> None:
        try:
            while True:
                reply = await read_frame(reader)
                if reply is None:
                    break
                future = self._pending.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (asyncio.CancelledError, ConnectionError):
            pass
        except Exception as exc:  # noqa: BLE001 - fail pending loudly
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(exc)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one RPC, await its correlated reply."""
        if self._closed:
            raise ConnectionError("client closed")
        rid = next(self._ids)
        message = {"id": rid, **message}
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        _reader, writer, lock = self._connections[
            next(self._rr) % len(self._connections)
        ]
        async with lock:
            await write_frame(writer, message)
        return await future

    # -- API --------------------------------------------------------------------

    async def txn(self, ops: Sequence[Sequence]) -> List[Any]:
        """Run one transaction; returns per-operation results in
        submitted order, or raises :class:`ServeError`."""
        reply = await self.request({"method": "txn", "ops": [list(op) for op in ops]})
        if not reply.get("ok"):
            raise ServeError(reply)
        return reply.get("results", [])

    async def try_txn(self, ops: Sequence[Sequence]) -> Dict[str, Any]:
        """Like :meth:`txn` but returns the raw reply (loadgen wants
        aborts as data, not exceptions)."""
        return await self.request({"method": "txn", "ops": [list(op) for op in ops]})

    async def ping(self) -> Dict[str, Any]:
        return await self.request({"method": "ping"})

    async def stats(self) -> Dict[str, Any]:
        return await self.request({"method": "stats"})

    async def metrics(self) -> Dict[str, Any]:
        reply = await self.request({"method": "metrics"})
        return reply.get("metrics", {})

    async def prometheus(self) -> str:
        reply = await self.request({"method": "prometheus"})
        return reply.get("text", "")

    async def conformance(self, rollover: bool = False) -> Dict[str, Any]:
        return await self.request({"method": "conformance", "rollover": rollover})

    async def pause_shard(self, shard: int) -> None:
        await self.request({"method": "pause", "shard": shard})

    async def resume_shard(self, shard: int) -> None:
        await self.request({"method": "resume", "shard": shard})

    async def shutdown(self) -> Dict[str, Any]:
        return await self.request({"method": "shutdown"})


def call_daemon(
    method: str,
    host: str = "127.0.0.1",
    port: int = 7411,
    retries: int = 8,
    **params: Any,
) -> Dict[str, Any]:
    """One synchronous RPC against a running daemon — the shape the
    ``repro assert-*`` subcommands use.  Raises ``ConnectionError`` when
    the daemon is unreachable; returns the raw reply otherwise."""

    async def go() -> Dict[str, Any]:
        client = ServeClient(host, port, pool=1)
        await client.connect(retries=retries)
        try:
            return await client.request({"method": method, **params})
        finally:
            await client.close()

    return asyncio.run(go())
