"""``repro serve`` — the sharded transactional service layer.

A long-running asyncio daemon (:mod:`repro.serve.daemon`) exposes the
registered specs as a transactional key-space API over the
length-prefixed JSON frame protocol (:mod:`repro.serve.framing`).  Keys
hash-shard across N PUSH/PULL runtimes (:mod:`repro.serve.sharding`,
:mod:`repro.serve.shard`); single-shard transactions commit via the
local CMT rule, cross-shard ones run a deterministic CMT-driven 2PC.
:mod:`repro.serve.client` is the asyncio client library and
:mod:`repro.serve.loadgen` the closed/open-loop load generator behind
``repro loadgen``.
"""

from repro.serve.framing import (
    FrameDecoder,
    FrameError,
    MAX_FRAME,
    OversizedFrame,
    TruncatedFrame,
    decode_frame,
    encode_frame,
)
from repro.serve.sharding import (
    METHODS,
    SPACES,
    ProtocolError,
    commit_order,
    op_shard,
    shard_of,
    shard_seed,
    split_by_shard,
    validate_op,
)

__all__ = [
    "FrameDecoder",
    "FrameError",
    "MAX_FRAME",
    "OversizedFrame",
    "TruncatedFrame",
    "decode_frame",
    "encode_frame",
    "METHODS",
    "SPACES",
    "ProtocolError",
    "commit_order",
    "op_shard",
    "shard_of",
    "shard_seed",
    "split_by_shard",
    "validate_op",
]
