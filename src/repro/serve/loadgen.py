"""Closed/open-loop load generator for the ``repro serve`` daemon.

The generator multiplexes ``sessions`` *logical* sessions (tens of
thousands are fine — a session is just a seeded workload cursor, not a
socket) over a bounded :class:`~repro.serve.client.ServeClient`
connection pool:

* **closed loop** — each in-flight slot issues its next transaction the
  moment the previous one answers; concurrency is exactly
  ``max_inflight`` and offered load adapts to service rate (the classic
  saturation-throughput harness);
* **open loop** — arrivals follow a seeded schedule at ``rate`` req/s
  regardless of completions, the harness that exposes queueing: latency
  includes the time an arrival waits for an in-flight slot.  The
  generator itself is *bounded* — at most ``max_inflight`` transactions
  are in flight, arrivals beyond that wait (counted as ``throttled``) —
  so an overdriven daemon sees TCP backpressure, not unbounded inboxes
  (``tests/test_serve_daemon.py`` pins the depth bound).

Workloads are pure functions of ``(seed, session, step)``.  Single-shard
transactions are single-shard *by construction* (keys drawn from
per-shard pools bucketed via :func:`~repro.serve.sharding.shard_of`);
``cross_ratio`` deliberately mixes two shards' pools to exercise 2PC.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import percentile_nearest_rank
from repro.serve.client import ServeClient
from repro.serve.sharding import shard_of


@dataclass(frozen=True)
class LoadConfig:
    host: str = "127.0.0.1"
    port: int = 7411
    mode: str = "closed"  # closed | open
    #: logical sessions (workload cursors), multiplexed over the pool
    sessions: int = 100
    #: total transactions to issue across all sessions
    requests: int = 1000
    #: open-loop arrival rate, req/s
    rate: float = 500.0
    workload: str = "kvmap"  # kvmap | bank | counter | mixed
    #: distinct keys per keyed space
    keys: int = 128
    ops_per_txn: int = 2
    read_ratio: float = 0.5
    #: fraction of transactions deliberately spanning two shards
    cross_ratio: float = 0.0
    seed: int = 0
    #: TCP connections in the pool
    pool: int = 4
    #: in-flight bound (closed-loop concurrency / open-loop cap)
    max_inflight: int = 64


@dataclass
class LoadReport:
    """JSON-safe outcome of one load run."""

    mode: str
    workload: str
    requests: int = 0
    committed: int = 0
    failed: int = 0
    throttled: int = 0
    elapsed_s: float = 0.0
    rps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    abort_rate: float = 0.0
    latencies_ms: List[float] = field(default_factory=list, repr=False)

    def finalise(self) -> "LoadReport":
        samples = sorted(self.latencies_ms)
        self.p50_ms = round(percentile_nearest_rank(samples, 0.50), 3)
        self.p99_ms = round(percentile_nearest_rank(samples, 0.99), 3)
        self.rps = round(self.requests / self.elapsed_s, 1) if self.elapsed_s else 0.0
        total = self.committed + self.failed
        self.abort_rate = round(self.failed / total, 4) if total else 0.0
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "workload": self.workload,
            "requests": self.requests,
            "committed": self.committed,
            "failed": self.failed,
            "throttled": self.throttled,
            "elapsed_s": round(self.elapsed_s, 3),
            "rps": self.rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "abort_rate": self.abort_rate,
        }


class WorkloadSource:
    """Seeded transaction generator; see module docstring."""

    def __init__(self, config: LoadConfig, shards: int) -> None:
        self.config = config
        self.shards = shards
        self.rng = random.Random(f"loadgen:{config.seed}")
        # Bucket the key space per shard so single-shard txns stay
        # single-shard by construction.
        self.kv_pools: List[List[str]] = [[] for _ in range(shards)]
        self.bank_pools: List[List[str]] = [[] for _ in range(shards)]
        index = 0
        while min(len(p) for p in self.kv_pools) < max(1, config.keys // shards):
            key = f"u{index}"
            self.kv_pools[shard_of("kvmap", key, shards)].append(key)
            index += 1
        index = 0
        while min(len(p) for p in self.bank_pools) < max(1, config.keys // shards):
            acct = f"acct{index}"
            self.bank_pools[shard_of("bank", acct, shards)].append(acct)
            index += 1

    def _kv_ops(self, pool: Sequence[str], rng: random.Random) -> List[List]:
        ops: List[List] = []
        for _ in range(self.config.ops_per_txn):
            key = rng.choice(pool)
            if rng.random() < self.config.read_ratio:
                ops.append(["kvmap", "get", key])
            else:
                ops.append(["kvmap", "put", key, rng.randrange(1 << 16)])
        return ops

    def _bank_ops(self, pool: Sequence[str], rng: random.Random) -> List[List]:
        if rng.random() < self.config.read_ratio or len(pool) < 2:
            return [["bank", "balance", rng.choice(pool)]]
        src, dst = rng.sample(pool, 2)
        amount = rng.randrange(1, 50)
        # A transfer: the withdraw may return False (insufficient funds)
        # — that is a committed result, not an abort.
        return [["bank", "deposit", dst, amount], ["bank", "withdraw", src, amount]]

    def next_txn(self) -> List[List]:
        rng = self.rng
        config = self.config
        workload = config.workload
        if workload == "mixed":
            workload = rng.choice(("kvmap", "bank", "counter", "queue"))
        if workload == "counter":
            return [["counter", "inc"], ["counter", "get"]]
        if workload == "queue":
            return [["queue", "enq", rng.randrange(1 << 16)], ["queue", "size"]]
        pools = self.kv_pools if workload == "kvmap" else self.bank_pools
        build = self._kv_ops if workload == "kvmap" else self._bank_ops
        if self.shards > 1 and rng.random() < config.cross_ratio:
            a, b = rng.sample(range(self.shards), 2)
            return build(pools[a], rng) + build(pools[b], rng)
        return build(pools[rng.randrange(self.shards)], rng)


async def run_load(config: LoadConfig) -> LoadReport:
    """Drive one load run against a live daemon; returns the report."""
    client = ServeClient(config.host, config.port, pool=config.pool)
    await client.connect()
    try:
        ping = await client.ping()
        shards = int(ping.get("shards", 1))
        source = WorkloadSource(config, shards)
        report = LoadReport(mode=config.mode, workload=config.workload)
        inflight = asyncio.Semaphore(config.max_inflight)

        async def issue(ops: List[List]) -> None:
            start = time.perf_counter()
            reply = await client.try_txn(ops)
            report.latencies_ms.append((time.perf_counter() - start) * 1e3)
            report.requests += 1
            if reply.get("ok"):
                report.committed += 1
            else:
                report.failed += 1

        began = time.perf_counter()
        if config.mode == "closed":
            remaining = iter(range(config.requests))

            async def slot() -> None:
                for _ in remaining:
                    async with inflight:
                        await issue(source.next_txn())

            # One slot per unit of closed-loop concurrency; the shared
            # iterator hands out work until the budget is spent.
            workers = min(config.max_inflight, max(1, config.requests))
            await asyncio.gather(*[slot() for _ in range(workers)])
        else:
            interval = 1.0 / max(config.rate, 1e-6)
            tasks: List[asyncio.Task] = []

            async def arrival(ops: List[List]) -> None:
                async with inflight:
                    await issue(ops)

            for n in range(config.requests):
                target = began + n * interval
                delay = target - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                if inflight.locked():
                    report.throttled += 1
                tasks.append(asyncio.ensure_future(arrival(source.next_txn())))
            await asyncio.gather(*tasks)
        report.elapsed_s = time.perf_counter() - began
        return report.finalise()
    finally:
        await client.close()


def run_load_sync(config: LoadConfig) -> LoadReport:
    return asyncio.run(run_load(config))
