"""Shared measurement core for the serve benchmark and perf tier.

``benchmarks/bench_serve.py`` (the ratchet that writes the committed
``BENCH_serve.json``) and ``repro perf --tier serve`` (the watchdog that
judges against it) must measure *the same thing the same way*, so the
one-configuration measurement lives here: start a daemon on an ephemeral
port, drive a closed-loop load run, then ask every shard's conformance
gate before shutting down.

Two modes matter and are **not** comparable to each other:

* ``process`` — one forked worker per shard, the deployment shape.  The
  benchmark matrix and the shard-scaling row use it (aggregate req/s can
  only scale across shards when shards own distinct event loops).
* ``inline`` — all shards on the caller's loop, deterministic and
  fork-free.  The watchdog's gate rows use it so ``repro perf`` stays
  cheap and CI-safe; the baseline therefore records gate rows measured
  inline, separate from the process-mode matrix.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.serve.client import ServeClient
from repro.serve.daemon import Daemon, DaemonConfig
from repro.serve.loadgen import LoadConfig, run_load


async def measure_serve_async(
    strategy: str,
    shards: int,
    *,
    mode: str = "inline",
    workload: str = "kvmap",
    requests: int = 400,
    cross_ratio: float = 0.0,
    seed: int = 0,
    conformance_window: int = 64,
    max_inflight: int = 32,
    pool: int = 2,
    flight_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """One configuration end to end: daemon up, closed-loop load,
    conformance verdict, daemon down.  Returns a JSON-safe row."""
    config = DaemonConfig(
        host="127.0.0.1",
        port=0,
        shards=shards,
        strategy=strategy,
        seed=seed,
        mode=mode,
        conformance_window=conformance_window,
        flight_dir=flight_dir,
    )
    daemon = Daemon(config)
    await daemon.start()
    try:
        load = LoadConfig(
            host="127.0.0.1",
            port=daemon.port,
            mode="closed",
            requests=requests,
            workload=workload,
            cross_ratio=cross_ratio,
            seed=seed,
            pool=pool,
            max_inflight=max_inflight,
        )
        report = await run_load(load)
        client = ServeClient("127.0.0.1", daemon.port, pool=1)
        await client.connect(retries=4)
        try:
            verdict = await client.conformance()
        finally:
            await client.close()
    finally:
        await daemon.stop()
    row = report.to_dict()
    shard_rows = verdict.get("shards", [])
    row.update(
        {
            "strategy": strategy,
            "shards": shards,
            "daemon_mode": mode,
            "cross_ratio": cross_ratio,
            "seed": seed,
            "conformance_ok": bool(verdict.get("ok")),
            "commits_gated": sum(s.get("commits_gated", 0) for s in shard_rows),
            "conformance_failures": [
                failure
                for s in shard_rows
                for failure in (
                    list(s.get("failures", [])) + list(s.get("sticky_failures", []))
                )
            ],
        }
    )
    return row


def measure_serve(strategy: str, shards: int, **kwargs: Any) -> Dict[str, Any]:
    """Synchronous wrapper around :func:`measure_serve_async`."""
    return asyncio.run(measure_serve_async(strategy, shards, **kwargs))
