"""The ``repro serve`` daemon: a TCP gateway over N shard runtimes.

Topology::

    client ──TCP──▶ gateway (asyncio)
                      │  hash-route (sharding.op_shard)
                      ├─ inbox[0] ─▶ shard worker 0 ─▶ ShardState 0
                      ├─ inbox[1] ─▶ shard worker 1 ─▶ ShardState 1
                      └─ ...          (inline coroutine or forked process)

* **Single-shard transactions** ride a bounded per-shard inbox
  (``asyncio.Queue(maxsize=inbox)``).  The connection handler *awaits*
  the put — a full inbox suspends that connection's read loop, TCP flow
  control pushes back to the client, and the daemon's memory stays
  bounded no matter how hard an open-loop generator drives it (the
  backpressure property ``tests/test_serve_daemon.py`` pins down).
  Workers drain up to ``batch`` transactions per wave and run them
  through the shard's TxStepper + scheduler machinery.

* **Cross-shard transactions** run a deterministic 2PC: the coordinator
  prepares on every participant (ascending shard order), then commits in
  :func:`~repro.serve.sharding.commit_order` — a pure function of
  ``(root seed, txn id)``, never of prepare-response timing.  A prepare
  conflict aborts the prepared participants and retries the whole round
  under the shared :mod:`repro.faults.recovery` policy (seeded backoff,
  the same contract chaos runs use), bounded by ``cross_attempts``.

* **Admin plane** (same frame protocol): ``ping``, ``stats``,
  ``metrics``, ``prometheus`` (the MetricsRegistry text exposition),
  ``conformance`` (fan the chaos gate out over every shard's committed
  history), ``pause``/``resume`` (test hook), ``shutdown``.

In ``process`` mode each shard is a forked worker speaking the same
frame protocol over a unix socket — N shards on N cores give real
parallelism.  ``inline`` mode keeps every shard on the gateway loop:
zero fork cost, perfect for tests and the ``--tiny`` CI tier.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.recovery import make_policy
from repro.obs.metrics import MetricsRegistry
from repro.serve.framing import FrameError, read_frame, write_frame
from repro.serve.shard import (
    ShardConfig,
    ShardState,
    handle_shard_request,
    run_shard_worker,
)
from repro.serve.sharding import ProtocolError, commit_order, op_shard, split_by_shard

_SHUTDOWN = object()


@dataclass(frozen=True)
class DaemonConfig:
    host: str = "127.0.0.1"
    port: int = 7411
    shards: int = 2
    strategy: str = "encounter"
    scheduler: str = "random"
    seed: int = 0
    mode: str = "inline"  # inline | process
    #: max transactions per shard wave
    batch: int = 32
    #: bound on each per-shard inbox (the backpressure knob)
    inbox: int = 256
    #: bound on concurrently coordinating cross-shard transactions
    cross_inflight: int = 16
    #: full 2PC rounds before a cross-shard txn aborts permanently
    cross_attempts: int = 25
    wave_retries: int = 64
    max_attempts: int = 25
    conformance_window: int = 64
    flight_dir: Optional[str] = None
    #: durability root: per-shard segment stores live in
    #: ``<durable>/shard-NNN``, the 2PC decision log in
    #: ``<durable>/coord``.  None = in-memory only.
    durable: Optional[str] = None

    def shard_config(self, index: int) -> ShardConfig:
        return ShardConfig(
            index=index,
            shards=self.shards,
            strategy=self.strategy,
            scheduler=self.scheduler,
            root_seed=self.seed,
            wave_retries=self.wave_retries,
            max_attempts=self.max_attempts,
            conformance_window=self.conformance_window,
            flight_dir=self.flight_dir,
            durable_dir=os.path.join(self.durable, f"shard-{index:03d}")
            if self.durable
            else None,
        )


class InlineShard:
    """A ShardState driven directly on the gateway loop."""

    def __init__(self, config: ShardConfig) -> None:
        if config.durable_dir:
            from repro.durable.recovery import open_durable_shard

            self.state = open_durable_shard(config)
        else:
            self.state = ShardState(config)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return handle_shard_request(self.state, message)

    async def close(self) -> None:
        if self.state.durable is not None:
            self.state.durable.close()


class ProcessShard:
    """A shard worker in a forked process behind a unix socket.

    One connection, strictly request→reply under a lock, so the shard's
    arrival order is exactly the gateway's dispatch order."""

    def __init__(self, config: ShardConfig, socket_dir: str) -> None:
        self.config = config
        self.socket_path = os.path.join(socket_dir, f"shard-{config.index}.sock")
        self._process = None
        self._reader = None
        self._writer = None
        self._lock = asyncio.Lock()

    async def start(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self._process = ctx.Process(
            target=run_shard_worker,
            args=(self.config.to_dict(), self.socket_path),
            daemon=True,
        )
        self._process.start()
        for _ in range(200):
            try:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.socket_path
                )
                return
            except (ConnectionRefusedError, FileNotFoundError):
                await asyncio.sleep(0.05)
        raise RuntimeError(
            f"shard {self.config.index} worker did not come up on {self.socket_path}"
        )

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        async with self._lock:
            await write_frame(self._writer, message)
            reply = await read_frame(self._reader)
        if reply is None:
            raise RuntimeError(f"shard {self.config.index} worker closed the socket")
        return reply

    async def close(self) -> None:
        try:
            if self._writer is not None:
                await self.request({"id": "shutdown", "method": "shutdown"})
                self._writer.close()
        except (RuntimeError, ConnectionError, FrameError):
            pass
        if self._process is not None:
            self._process.join(timeout=5)
            if self._process.is_alive():  # pragma: no cover - stuck worker
                self._process.terminate()


class Daemon:
    """Gateway + shard workers; see module docstring."""

    def __init__(self, config: DaemonConfig) -> None:
        self.config = config
        self.registry = MetricsRegistry()
        self.backends: List[Any] = []
        self.inboxes: List[asyncio.Queue] = []
        self.inbox_peaks: List[int] = []
        self._pause: List[asyncio.Event] = []
        self._workers: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._socket_dir: Optional[tempfile.TemporaryDirectory] = None
        self._txn_seq = itertools.count(1)
        self._cross_sem: Optional[asyncio.Semaphore] = None
        self._cross_recovery = make_policy("default", seed=config.seed)
        self._stopping: Optional[asyncio.Future] = None
        self._connections = 0
        #: 2PC decision log (SegmentStore on <durable>/coord) + the
        #: root-directory lock that makes two daemons on one durability
        #: root fail fast instead of fighting over shard locks
        self._coord = None
        self._durable_lock = None

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        config = self.config
        self._stopping = asyncio.get_running_loop().create_future()
        self._cross_sem = asyncio.Semaphore(config.cross_inflight)
        if config.durable:
            from repro.durable.store import DirLock, SegmentStore

            os.makedirs(config.durable, exist_ok=True)
            self._durable_lock = DirLock(config.durable).acquire()
            self._coord = SegmentStore(
                os.path.join(config.durable, "coord"), registry=self.registry
            )
        if config.mode == "process":
            self._socket_dir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            for i in range(config.shards):
                backend = ProcessShard(config.shard_config(i), self._socket_dir.name)
                await backend.start()
                self.backends.append(backend)
        else:
            for i in range(config.shards):
                self.backends.append(InlineShard(config.shard_config(i)))
        for i in range(config.shards):
            self.inboxes.append(asyncio.Queue(maxsize=config.inbox))
            self.inbox_peaks.append(0)
            event = asyncio.Event()
            event.set()
            self._pause.append(event)
            self._workers.append(asyncio.ensure_future(self._shard_worker(i)))
        self._server = await asyncio.start_server(
            self._handle_connection, config.host, config.port
        )

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        await self._stopping

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        for backend in self.backends:
            await backend.close()
        if self._coord is not None:
            self._coord.close()
            self._coord = None
        if self._durable_lock is not None:
            self._durable_lock.release()
            self._durable_lock = None
        if self._socket_dir is not None:
            self._socket_dir.cleanup()
        if self._stopping is not None and not self._stopping.done():
            self._stopping.set_result(None)

    # -- shard workers ----------------------------------------------------------

    async def _shard_worker(self, index: int) -> None:
        backend = self.backends[index]
        queue = self.inboxes[index]
        carry: List[Dict[str, Any]] = []
        while True:
            await self._pause[index].wait()
            items = carry
            carry = []
            if not items:
                item = await queue.get()
                if item is _SHUTDOWN:
                    return
                items.append(item)
            while len(items) < self.config.batch:
                try:
                    more = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if more is _SHUTDOWN:
                    return
                items.append(more)
            # Re-check the pause gate: the worker may have been parked on
            # queue.get() when the pause landed, and a wave must never
            # start while the shard is administratively paused.
            await self._pause[index].wait()
            reply = await backend.request(
                {
                    "id": f"wave-{index}",
                    "method": "wave",
                    "txns": [
                        {"id": it["token"], "ops": it["ops"], "attempts": it["attempts"]}
                        for it in items
                    ],
                }
            )
            if not reply.get("ok"):
                for item in items:
                    item["future"].set_result(
                        {"ok": False, "error": reply.get("error", "shard failure"),
                         "kind": "internal"}
                    )
                continue
            by_token = {it["token"]: it for it in items}
            for outcome in reply["outcomes"]:
                item = by_token[outcome["id"]]
                if outcome.get("retry"):
                    item["attempts"] = outcome.get("attempts", item["attempts"] + 1)
                    carry.append(item)
                else:
                    item["future"].set_result(
                        {key: outcome[key]
                         for key in ("ok", "results", "error", "kind")
                         if key in outcome}
                    )
            checkpoint = reply.get("checkpoint")
            if checkpoint and not checkpoint.get("ok"):
                self.registry.counter("serve.conformance.failures").inc(
                    len(checkpoint.get("failures", ()))
                )
            if carry:
                # Yield the loop so parked 2PC phase-2 messages can land
                # before the conflicting carry items retry.
                await asyncio.sleep(0)

    # -- cross-shard 2PC --------------------------------------------------------

    async def _run_cross(self, routed: Dict[int, List], ops: Sequence[Sequence]) -> Dict[str, Any]:
        """Coordinate one cross-shard transaction; see module docstring."""
        config = self.config
        participants = sorted(routed)
        # Reassembly map: op position in the submitted txn → (shard, slot).
        slots: Dict[int, Tuple[int, int]] = {}
        counters = {shard: 0 for shard in participants}
        for position, op in enumerate(ops):
            shard = op_shard(op, config.shards)
            slots[position] = (shard, counters[shard])
            counters[shard] += 1
        job = next(self._txn_seq)
        try:
            for attempt in range(1, config.cross_attempts + 1):
                txn_id = f"x{job}.{attempt}"
                prepared: List[int] = []
                conflict: Optional[Dict[str, Any]] = None
                per_shard_results: Dict[int, List[Any]] = {}
                for shard in participants:
                    reply = await self.backends[shard].request(
                        {"id": txn_id, "method": "prepare",
                         "txn": txn_id, "ops": routed[shard]}
                    )
                    if reply.get("ok"):
                        prepared.append(shard)
                        per_shard_results[shard] = reply.get("results", [])
                    else:
                        conflict = reply
                        break
                if conflict is None:
                    if self._coord is not None:
                        # The 2PC decision point: once this record is
                        # fsync'd the transaction commits even if the
                        # daemon dies mid-phase-2 — recovering shards
                        # find their in-doubt prepares decided here.
                        self._coord.append(
                            {"t": "decide", "txn": txn_id,
                             "outcome": "commit",
                             "participants": list(participants)}
                        )
                        self._coord.sync()
                    order = commit_order(config.seed, txn_id, participants)
                    for shard in order:
                        await self.backends[shard].request(
                            {"id": txn_id, "method": "commit", "txn": txn_id}
                        )
                    self.registry.counter("serve.cross.committed").inc()
                    results = [
                        per_shard_results[shard][slot]
                        for _pos, (shard, slot) in sorted(slots.items())
                    ]
                    return {"ok": True, "results": results}
                if conflict.get("kind") == "protocol":
                    # Malformed sub-txn: nothing was prepared for it, but
                    # earlier participants were — roll those back.
                    for shard in commit_order(config.seed, txn_id, prepared):
                        await self.backends[shard].request(
                            {"id": txn_id, "method": "abort", "txn": txn_id,
                             "reason": "protocol error on sibling shard"}
                        )
                    self.registry.counter("serve.cross.rejected").inc()
                    return conflict
                if self._coord is not None and prepared:
                    # Advisory (recovery presumes abort for any undecided
                    # prepare), so no sync — it rides the next decision's
                    # batch and just keeps the decision log complete.
                    self._coord.append(
                        {"t": "decide", "txn": txn_id, "outcome": "abort",
                         "participants": list(prepared)}
                    )
                for shard in commit_order(config.seed, txn_id, prepared):
                    await self.backends[shard].request(
                        {"id": txn_id, "method": "abort", "txn": txn_id,
                         "reason": "2pc prepare conflict"}
                    )
                self.registry.counter("serve.cross.retries").inc()
                from repro.core.errors import AbortKind

                quanta, _escalate = self._cross_recovery.on_abort(
                    job, attempt, AbortKind.CONFLICT
                )
                await asyncio.sleep(min(quanta, 64) * 0.001)
            self.registry.counter("serve.cross.aborted").inc()
            return {
                "ok": False,
                "error": f"cross-shard txn aborted after {config.cross_attempts} rounds",
                "kind": "conflict",
            }
        finally:
            self._cross_sem.release()

    # -- request plane ----------------------------------------------------------

    async def _finish_txn(self, kind: str, start: float, awaitable) -> Dict[str, Any]:
        reply = await awaitable
        elapsed_us = (time.perf_counter() - start) * 1e6
        self.registry.histogram("serve.latency_us", {"kind": kind}).observe(elapsed_us)
        if not reply.get("ok"):
            self.registry.counter("serve.requests.failed").inc()
        return reply

    async def _handle_admin(self, message: Dict[str, Any]) -> Dict[str, Any]:
        method = message.get("method")
        if method == "ping":
            return {"ok": True, "pong": True, "shards": self.config.shards,
                    "strategy": self.config.strategy, "mode": self.config.mode}
        if method == "stats":
            shard_stats = []
            for backend in self.backends:
                reply = await backend.request({"id": "stats", "method": "stats"})
                shard_stats.append(reply.get("stats", {}))
            return {
                "ok": True,
                "connections": self._connections,
                "inbox_peaks": list(self.inbox_peaks),
                "shards": shard_stats,
            }
        if method in ("metrics", "prometheus"):
            merged = await self._merged_registry()
            if method == "metrics":
                return {"ok": True, "metrics": merged.snapshot()}
            return {"ok": True, "text": merged.to_prometheus()}
        if method == "conformance":
            verdicts = []
            for backend in self.backends:
                reply = await backend.request(
                    {"id": "conformance", "method": "conformance",
                     "rollover": bool(message.get("rollover", False))}
                )
                verdicts.append({k: v for k, v in reply.items() if k != "id"})
            clean = all(v.get("ok") and not v.get("sticky_failures") for v in verdicts)
            return {"ok": clean, "shards": verdicts}
        if method == "pause":
            self._pause[int(message.get("shard", 0))].clear()
            return {"ok": True}
        if method == "resume":
            self._pause[int(message.get("shard", 0))].set()
            return {"ok": True}
        if method == "shutdown":
            asyncio.ensure_future(self.stop())
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown method {method!r}", "kind": "protocol"}

    async def _merged_registry(self) -> MetricsRegistry:
        """Daemon-level metrics plus every shard's counters/gauges under a
        ``shard`` label, in one registry for the text exposition."""
        merged = MetricsRegistry()
        for (name, labels), counter in self.registry._counters.items():
            merged.counter(name, dict(labels)).inc(counter.value)
        for (name, labels), gauge in self.registry._gauges.items():
            merged.gauge(name, dict(labels)).set(gauge.value)
        for (name, labels), histogram in self.registry._histograms.items():
            merged.histogram(name, dict(labels)).samples.extend(histogram.samples)
        for i, backend in enumerate(self.backends):
            reply = await backend.request({"id": "metrics", "method": "metrics"})
            snapshot = reply.get("metrics", {})
            labels = {"shard": str(i)}
            for name, value in snapshot.get("counters", {}).items():
                merged.counter(name, labels).inc(value)
            for name, value in snapshot.get("gauges", {}).items():
                merged.gauge(name, labels).set(value)
            for name, samples in snapshot.get("histograms", {}).items():
                merged.histogram(name, labels).samples.extend(samples)
            merged.gauge("serve.inbox.depth", labels).set(self.inboxes[i].qsize())
            merged.gauge("serve.inbox.peak", labels).set(self.inbox_peaks[i])
        return merged

    async def _handle_connection(self, reader, writer) -> None:
        """One client connection.  The read loop only ever blocks on the
        *bounded* structures — a full shard inbox or the cross-shard
        semaphore — so an open-loop client that outruns the shards stalls
        here (TCP backpressure) instead of growing daemon memory.
        Replies go out as their transactions finish, not in arrival
        order; the ``id`` field is the client's correlation handle."""
        self._connections += 1
        self.registry.gauge("serve.connections").set(self._connections)
        write_lock = asyncio.Lock()
        replies: set = set()

        async def send(rid, reply: Dict[str, Any]) -> None:
            try:
                async with write_lock:
                    await write_frame(writer, {"id": rid, **reply})
            except (ConnectionError, RuntimeError):
                pass

        async def reply_when_done(rid, kind: str, start: float, awaitable) -> None:
            await send(rid, await self._finish_txn(kind, start, awaitable))

        def track(coro) -> None:
            task = asyncio.ensure_future(coro)
            replies.add(task)
            task.add_done_callback(replies.discard)

        try:
            while True:
                try:
                    message = await read_frame(reader)
                except FrameError:
                    # Unrecoverable stream (oversized/corrupt frame):
                    # answer once, then drop the connection.
                    await send(None, {"ok": False, "error": "bad frame",
                                      "kind": "protocol"})
                    break
                if message is None:
                    break
                if not isinstance(message, dict):
                    await send(None, {"ok": False, "kind": "protocol",
                                      "error": "frame must be a JSON object"})
                    continue
                rid = message.get("id")
                if message.get("method") != "txn":
                    await send(rid, await self._handle_admin(message))
                    continue
                ops = message.get("ops", [])
                try:
                    routed = split_by_shard(ops, self.config.shards)
                except ProtocolError as exc:
                    self.registry.counter("serve.requests.rejected").inc()
                    await send(rid, {"ok": False, "error": str(exc),
                                     "kind": "protocol"})
                    continue
                if not routed:
                    await send(rid, {"ok": False, "kind": "protocol",
                                     "error": "transaction has no operations"})
                    continue
                start = time.perf_counter()
                if len(routed) == 1:
                    ((shard, shard_ops),) = routed.items()
                    self.registry.counter("serve.requests.single").inc()
                    loop = asyncio.get_running_loop()
                    item = {
                        "token": f"s{next(self._txn_seq)}",
                        "ops": list(shard_ops),
                        "attempts": 0,
                        "future": loop.create_future(),
                    }
                    queue = self.inboxes[shard]
                    await queue.put(item)  # blocks when full → backpressure
                    depth = queue.qsize()
                    if depth > self.inbox_peaks[shard]:
                        self.inbox_peaks[shard] = depth
                    track(reply_when_done(rid, "single", start, item["future"]))
                else:
                    self.registry.counter("serve.requests.cross").inc()
                    await self._cross_sem.acquire()  # bounded coordinators
                    track(reply_when_done(
                        rid, "cross", start, self._run_cross(routed, ops)))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels live connection handlers mid-read;
            # fall through to cleanup instead of surfacing the
            # cancellation to the transport callback.
            pass
        finally:
            if replies:
                await asyncio.gather(*replies, return_exceptions=True)
            self._connections -= 1
            self.registry.gauge("serve.connections").set(self._connections)
            writer.close()


async def run_daemon(config: DaemonConfig, ready=None) -> None:
    """Start a daemon and block until shutdown.  ``ready`` (optional
    callable) receives the daemon once the listening socket is bound —
    the CLI uses it to print the ready line."""
    daemon = Daemon(config)
    await daemon.start()
    if ready is not None:
        ready(daemon)
    try:
        await daemon.serve_until_stopped()
    finally:
        await daemon.stop()
