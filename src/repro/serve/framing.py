"""Wire framing for the ``repro serve`` protocol.

Length-prefixed JSON frames, the shape every piece of the service layer
speaks — client ↔ daemon over TCP, daemon ↔ shard worker over unix
sockets.  A frame is::

    +----------------+----------------------+
    | 4-byte big-    | UTF-8 JSON document  |
    | endian length  | (exactly that many   |
    | of the payload | bytes)               |
    +----------------+----------------------+

Like :mod:`repro.core.packed`, this module is the *single owner* of the
byte layout, and its encode/decode pair are total inverses on the
JSON-safe domain: ``decode_frame(encode_frame(x)) == (x, b"")`` for every
``x`` built from ``None``/bool/int/float/str via lists and string-keyed
dicts (the property test in ``tests/test_serve_framing.py`` drives
arbitrary such values through the round trip).  Everything else is an
explicit error, never a silent truncation:

* :class:`TruncatedFrame` — the buffer ends mid-header or mid-payload
  (a *recoverable* condition: feed more bytes);
* :class:`OversizedFrame` — the header announces a payload larger than
  ``max_frame`` (unrecoverable for that connection: a corrupt or hostile
  peer; the bound is what keeps a daemon inbox from absorbing a
  gigabyte "frame");
* :class:`FrameError` — the payload is not valid UTF-8 JSON.

:class:`FrameDecoder` is the incremental form used by the asyncio
servers: ``feed()`` bytes as they arrive, collect whole decoded messages,
keep the tail buffered.
"""

from __future__ import annotations

import json
import struct
from typing import Any, List, Optional, Tuple

#: Frames above this many payload bytes are refused on both encode and
#: decode (1 MiB — generous for batched transaction traffic, small
#: enough that a corrupt length header cannot balloon a buffer).
MAX_FRAME = 1 << 20

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size


class FrameError(ValueError):
    """The bytes are not a well-formed frame (bad JSON payload)."""


class TruncatedFrame(FrameError):
    """The buffer ends before the announced frame does — feed more bytes."""


class OversizedFrame(FrameError):
    """The announced payload exceeds the frame bound."""


def encode_frame(message: Any, max_frame: int = MAX_FRAME) -> bytes:
    """``message`` (JSON-safe) → one wire frame."""
    payload = json.dumps(
        message, separators=(",", ":"), ensure_ascii=False, allow_nan=False
    ).encode("utf-8")
    if len(payload) > max_frame:
        raise OversizedFrame(
            f"encoded payload is {len(payload)} bytes (max {max_frame})"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(data: bytes, max_frame: int = MAX_FRAME) -> Tuple[Any, bytes]:
    """First frame of ``data`` → ``(message, remaining_bytes)``."""
    if len(data) < HEADER_SIZE:
        raise TruncatedFrame(
            f"need {HEADER_SIZE} header bytes, have {len(data)}"
        )
    (length,) = _HEADER.unpack_from(data)
    if length > max_frame:
        raise OversizedFrame(f"announced payload is {length} bytes (max {max_frame})")
    end = HEADER_SIZE + length
    if len(data) < end:
        raise TruncatedFrame(f"need {end} bytes, have {len(data)}")
    payload = data[HEADER_SIZE:end]
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not UTF-8 JSON: {exc}")
    return message, data[end:]


class FrameDecoder:
    """Incremental decoder: buffer bytes, surface whole messages.

    ``feed`` never raises :class:`TruncatedFrame` (partial frames simply
    stay buffered); :class:`OversizedFrame`/:class:`FrameError` propagate
    — both mean the stream is unrecoverable from this point.
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Any]:
        self._buffer.extend(data)
        messages: List[Any] = []
        while True:
            try:
                message, rest = decode_frame(bytes(self._buffer), self.max_frame)
            except TruncatedFrame:
                return messages
            self._buffer = bytearray(rest)
            messages.append(message)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# -- asyncio stream helpers ----------------------------------------------------


async def read_frame(reader, max_frame: int = MAX_FRAME) -> Optional[Any]:
    """Read exactly one frame from an :class:`asyncio.StreamReader`.
    Returns ``None`` on clean EOF at a frame boundary."""
    import asyncio

    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrame(
            f"connection closed mid-header ({len(exc.partial)} bytes)"
        )
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise OversizedFrame(f"announced payload is {length} bytes (max {max_frame})")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            f"connection closed mid-payload ({len(exc.partial)}/{length} bytes)"
        )
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not UTF-8 JSON: {exc}")


async def write_frame(writer, message: Any, max_frame: int = MAX_FRAME) -> None:
    """Encode and send one frame on an :class:`asyncio.StreamWriter`,
    honouring its flow control (``drain``)."""
    writer.write(encode_frame(message, max_frame))
    await writer.drain()
