"""Key routing, seed derivation and the deterministic 2PC commit order.

Everything position-dependent about the sharded daemon is a pure function
in this module, so a whole-daemon run is replayable from ``(root seed,
workload)`` plus the per-shard arrival orders:

* **shard placement** (:func:`shard_of`) — CRC32 of ``"space:key"``,
  *not* Python's randomized ``hash``, so clients, the gateway and every
  shard process agree across interpreter boundaries and runs;
* **per-shard seeds** (:func:`shard_seed`) — each shard's scheduler,
  recovery jitter and any other seeded component derive from one root
  seed via BLAKE2b over ``(seed, shard)``, never from ad-hoc arithmetic
  (the chaos/fuzz determinism contract, extended to the daemon);
* **2PC commit order** (:func:`commit_order`) — cross-shard transactions
  commit on their participant shards in a *predefined* order: shards are
  ranked by BLAKE2b over ``(seed, txn_id, shard)``.  The order depends
  only on the root seed and the transaction id — not on prepare response
  timing — which is what makes replays reproduce the same global commit
  interleaving (the Saad et al. predefined-order framing, PAPERS.md).
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Any, List, Optional, Sequence, Tuple

#: The spec spaces a shard serves, each a component of its ProductSpec.
#: Keyed spaces (kvmap, bank) hash-shard per key; unkeyed spaces
#: (counter, queue) have a single global state, so the whole space lives
#: on the one shard :func:`shard_of` pins it to.
SPACES: Tuple[str, ...] = ("kvmap", "counter", "bank", "queue")

#: space → method → (is_keyed, arity incl. key).  The daemon validates
#: requests against this table before anything touches a machine, so a
#: malformed request is a protocol error, never a mid-transaction
#: SpecError.
METHODS = {
    "kvmap": {"put": 2, "get": 1, "remove": 1, "contains_key": 1},
    "counter": {"inc": 0, "dec": 0, "add": 1, "get": 0},
    "bank": {"deposit": 2, "withdraw": 2, "balance": 1},
    "queue": {"enq": 1, "deq": 0, "peek": 0, "size": 0},
}

#: keyed spaces route by the first argument; unkeyed ones by space name
KEYED_SPACES = frozenset({"kvmap", "bank"})


class ProtocolError(ValueError):
    """A request violates the wire contract (unknown space/method, wrong
    arity, non-scalar key) — rejected before execution."""


def validate_op(op: Sequence) -> Tuple[str, str, Tuple]:
    """``["kvmap", "put", k, v]`` → ``("kvmap", "put", (k, v))`` or raise."""
    if not isinstance(op, (list, tuple)) or len(op) < 2:
        raise ProtocolError(f"op must be [space, method, args...]; got {op!r}")
    space, method, args = op[0], op[1], tuple(op[2:])
    table = METHODS.get(space)
    if table is None:
        raise ProtocolError(f"unknown space {space!r} (known: {sorted(METHODS)})")
    if method not in table:
        raise ProtocolError(
            f"unknown method {space}.{method} (known: {sorted(table)})"
        )
    if len(args) != table[method]:
        raise ProtocolError(
            f"{space}.{method} takes {table[method]} argument(s), got {len(args)}"
        )
    if space in KEYED_SPACES and not isinstance(args[0], (str, int)):
        raise ProtocolError(
            f"{space}.{method} key must be a JSON string or integer, "
            f"got {type(args[0]).__name__}"
        )
    return space, method, args


def shard_of(space: str, key: Optional[Any], shards: int) -> int:
    """The shard owning ``key`` in ``space`` (or the whole space, for
    unkeyed spaces).  Stable across processes and runs."""
    token = f"{space}:{key!r}" if key is not None else f"{space}:*"
    return zlib.crc32(token.encode("utf-8")) % max(1, shards)


def op_shard(op: Sequence, shards: int) -> int:
    """Routing shard of one validated wire op."""
    space, _method, args = validate_op(op)
    key = args[0] if space in KEYED_SPACES else None
    return shard_of(space, key, shards)


def split_by_shard(ops: Sequence[Sequence], shards: int) -> dict:
    """``{shard_index: [wire ops]}`` preserving per-shard program order."""
    routed: dict = {}
    for op in ops:
        routed.setdefault(op_shard(op, shards), []).append(op)
    return routed


def _digest_int(*parts: Any) -> int:
    token = ":".join(str(p) for p in parts).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(token, digest_size=8).digest(), "big")


def shard_seed(root_seed: int, shard_index: int) -> int:
    """The one seed-derivation rule of the service layer: every seeded
    per-shard component (scheduler, recovery jitter) derives from
    ``(root_seed, shard_index)`` through this function."""
    return _digest_int("serve-shard", root_seed, shard_index) & 0x7FFFFFFF


def make_shard_scheduler(name: str, root_seed: int, shard_index: int):
    """Per-shard scheduler via the one :func:`~repro.runtime.scheduler.
    make_scheduler` factory, seeded by :func:`shard_seed` — the ISSUE 8
    satellite routing all daemon seeding through one root."""
    from repro.runtime.scheduler import make_scheduler

    return make_scheduler(name, shard_seed(root_seed, shard_index))


def commit_order(root_seed: int, txn_id: str, shards: Sequence[int]) -> List[int]:
    """Predefined 2PC commit order for ``txn_id`` over participant
    ``shards`` — a pure function of ``(root_seed, txn_id, shard)``, so
    replayed runs commit cross-shard transactions in the same order
    regardless of prepare-response timing."""
    return sorted(shards, key=lambda s: (_digest_int("serve-2pc", root_seed, txn_id, s), s))
