"""Conformance-gated chaos runs: prove the guarantees survive the nemesis.

A *chaos run* is one harness run with the adversarial scheduler, an armed
:class:`~repro.faults.plan.FaultInjector` and a recovery policy.  The
**conformance gate** then asserts everything Theorem 5.17 (plus §6.1 for
the opaque fragment) promises even under injected hostility:

1. no exception escapes the run — an injected fault that surfaces as a
   :class:`~repro.core.errors.CriterionViolation` or
   :class:`~repro.core.errors.MachineError` is a driver bug, not an abort;
2. the committed history passes :func:`~repro.core.serializability.
   check_history` (strict, real-time order respected);
3. for opaque strategies, every recorded view passes
   :func:`~repro.core.opacity.check_history_opaque` *and* the TMS2
   linearizability reduction
   (:func:`~repro.checking.tms2.check_history_opaque_tms2`) — two
   independent oracles, each filing under its own check kind, plus an
   ``opacity-divergence`` failure if they ever disagree in the
   direction that would indicate a checker bug;
4. every aborted attempt is a *clean* abort (structured
   :class:`~repro.core.errors.AbortKind`, never a missing one);
5. the machine and runtime end quiescent: no uncommitted global-log
   entries, no stranded local-log entries, no leaked locks, tokens,
   dependency dooms or active tids.

Any failing ``(seed, plan)`` reproduces deterministically (rebuild the
nemesis from the seed, or byte-replay the recorded choices), and
:func:`shrink_plan` delta-debugs the plan down to a minimal witness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.checking.tms2 import check_history_opaque_tms2
from repro.core.errors import OpacityViolation
from repro.core.opacity import check_history_opaque
from repro.core.serializability import check_history
from repro.core.spec import SequentialSpec
from repro.faults.nemesis import ReplayScheduler
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.recovery import RecoveryPolicy, make_policy
from repro.obs.flight import FlightRecorder, maybe_dump
from repro.obs.profiling import Profile
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer
from repro.runtime.harness import ExperimentResult, run_experiment
from repro.runtime.scheduler import Scheduler, make_scheduler
from repro.runtime.workload import WorkloadConfig, make_workload
from repro.tm import ALL_ALGORITHMS, TMAlgorithm

#: opacity's exhaustive view check is bounded; chaos workloads default to
#: few enough transactions that the bound is never exceeded
OPACITY_LIMIT = 6


@dataclass(frozen=True)
class ChaosFailure:
    """One conformance-gate violation."""

    #: exception | serializability | opacity | opacity-tms2 |
    #: opacity-divergence | dirty-abort | state
    check: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.detail}"


@dataclass
class ChaosResult:
    """Outcome of one conformance-gated chaos run."""

    algorithm: str
    seed: int
    plan: FaultPlan
    ok: bool
    failures: List[ChaosFailure]
    commits: int = 0
    aborts: int = 0
    permanently_aborted: int = 0
    total_steps: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    recovery: Dict[str, int] = field(default_factory=dict)
    #: recorded scheduler choice log (replay witness)
    choices: Tuple[Optional[int], ...] = ()
    opacity_checked: bool = False
    elapsed_sec: float = 0.0
    #: path of the flight-recorder dump auto-written on a gate failure
    #: (``None`` when the run passed or no recorder was armed)
    flight_dump: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "seed": self.seed,
            "plan": self.plan.to_dict(),
            "ok": self.ok,
            "failures": [str(f) for f in self.failures],
            "commits": self.commits,
            "aborts": self.aborts,
            "permanently_aborted": self.permanently_aborted,
            "total_steps": self.total_steps,
            "injected": dict(self.injected),
            "recovery": dict(self.recovery),
            "opacity_checked": self.opacity_checked,
            "elapsed_sec": round(self.elapsed_sec, 4),
            "flight_dump": self.flight_dump,
        }


def conformance_failures(
    algorithm: TMAlgorithm,
    spec: SequentialSpec,
    result: ExperimentResult,
    opacity_limit: int = OPACITY_LIMIT,
) -> Tuple[List[ChaosFailure], bool]:
    """Gate checks 2–5 over a finished run.  Returns ``(failures,
    opacity_checked)``."""
    failures: List[ChaosFailure] = []
    runtime = result.runtime
    history = runtime.history
    machine = runtime.machine

    # 2. serializability of the committed history (strict real-time order)
    serialization = check_history(spec, history, machine, strict=True)
    if not serialization.serializable:
        qualifier = "" if serialization.exhaustive else " (search not exhaustive)"
        failures.append(
            ChaosFailure(
                "serializability",
                f"no serial witness among {serialization.candidates_tried} "
                f"orders for {history.commit_count()} commits{qualifier}",
            )
        )

    # 3. opacity for the opaque fragment, adjudicated by *two* independent
    # oracles: the bounded view-consistency search and the TMS2
    # linearizability reduction (sound and complete on these scopes).
    # Each files under its own check kind, so killing one oracle leaves
    # the other firing — the zoo sensitivity test pins exactly that.
    opacity_checked = False
    if algorithm.opaque and history.commit_count() <= opacity_limit:
        try:
            bounded = check_history_opaque(
                spec, history, machine, max_exhaustive=opacity_limit
            )
            for violation in bounded:
                failures.append(ChaosFailure("opacity", violation))
            tms2 = check_history_opaque_tms2(
                spec, history, machine, max_exhaustive=opacity_limit
            )
            for violation in tms2:
                failures.append(ChaosFailure("opacity-tms2", violation))
            # the reduction's soundness direction: the bounded checker
            # only reports real violations, so TMS2 (complete) must
            # agree whenever the bounded checker fires
            if bounded and not tms2:
                failures.append(
                    ChaosFailure(
                        "opacity-divergence",
                        f"bounded checker reports {len(bounded)} "
                        f"violation(s) but TMS2 accepts the history",
                    )
                )
            opacity_checked = True
        except OpacityViolation as exc:  # pragma: no cover - bound guard
            failures.append(ChaosFailure("opacity", str(exc)))

    # 4. clean aborts: every aborted attempt carries a structured kind
    for record in history.aborted_records():
        if record.abort_kind is None:
            failures.append(
                ChaosFailure(
                    "dirty-abort",
                    f"tx {record.tx_id} aborted without a structured kind",
                )
            )

    # 5. quiescent end state: nothing leaked, nothing stranded
    for entry in machine.global_log:
        if not entry.is_committed:
            failures.append(
                ChaosFailure("state", f"uncommitted global-log entry: {entry.op}")
            )
    for thread in machine.threads:
        if len(thread.local) != 0:
            failures.append(
                ChaosFailure(
                    "state",
                    f"thread {thread.tid} stranded {len(thread.local)} "
                    "local-log entries",
                )
            )
    held = runtime.locks.all_held()
    if held:
        failures.append(ChaosFailure("state", f"leaked abstract locks: {held}"))
    leaked_tokens = {
        name: holder for name, holder in runtime.tokens.items() if holder is not None
    }
    if leaked_tokens:
        failures.append(ChaosFailure("state", f"leaked tokens: {leaked_tokens}"))
    doomed = runtime.dependencies.doomed_tids()
    if doomed:
        failures.append(
            ChaosFailure("state", f"undrained doomed consumers: {sorted(doomed)}")
        )
    if runtime.active_tids:
        failures.append(
            ChaosFailure("state", f"active tids after run: {sorted(runtime.active_tids)}")
        )
    return failures, opacity_checked


def run_chaos(
    algorithm: TMAlgorithm,
    spec: SequentialSpec,
    programs: Sequence,
    plan: FaultPlan,
    seed: Optional[int] = None,
    scheduler: str = "nemesis",
    recovery: Optional[RecoveryPolicy] = None,
    replay_choices: Optional[Sequence[Optional[int]]] = None,
    concurrency: Optional[int] = None,
    max_retries: int = 12,
    tracer: Tracer = NULL_TRACER,
    flight_dir: Optional[str] = None,
    profile: Optional[Profile] = None,
) -> ChaosResult:
    """One conformance-gated chaos run.

    Deterministic from ``(seed, plan)``: the scheduler, the recovery
    jitter and the injector all derive from them and nothing else.  Pass
    ``replay_choices`` (a prior result's ``choices``) to byte-replay a
    recorded interleaving instead of rebuilding the scheduler.

    ``profile`` accumulates span attribution (records the run with a
    full :class:`~repro.obs.tracer.RecordingTracer`); ``flight_dir``
    arms a bounded :class:`~repro.obs.flight.FlightRecorder` instead,
    whose tail is auto-dumped there when the gate fails.  Both only
    apply when the caller didn't pass an explicit ``tracer``.
    """
    seed = plan.seed if seed is None else seed
    injector = FaultInjector(plan)
    sched: Scheduler
    if replay_choices is not None:
        sched = ReplayScheduler(replay_choices)
    else:
        sched = make_scheduler(scheduler, seed)
        sched.record_choices = True
    policy = recovery if recovery is not None else make_policy("default", seed)
    own_tracer = tracer is NULL_TRACER
    if profile is not None and own_tracer:
        tracer = RecordingTracer()
    elif flight_dir is not None and own_tracer:
        tracer = FlightRecorder(auto_dump_dir=flight_dir)

    def _finish_profile() -> None:
        if profile is not None and own_tracer:
            profile.add_tracer(tracer)

    started = time.perf_counter()
    try:
        result = run_experiment(
            algorithm,
            spec,
            programs,
            concurrency=concurrency if concurrency is not None else len(programs),
            scheduler=sched,
            seed=seed,
            verify=False,  # the gate runs the checkers itself (no raising)
            compact=False,  # ... over the full, uncompacted log
            max_retries=max_retries,
            injector=injector,
            recovery=policy,
            tracer=tracer,
        )
    except Exception as exc:  # CriterionViolation, MachineError, anything
        _finish_profile()
        return ChaosResult(
            algorithm=algorithm.name,
            seed=seed,
            plan=plan,
            ok=False,
            failures=[ChaosFailure("exception", f"{type(exc).__name__}: {exc}")],
            injected=dict(injector.stats),
            recovery=policy.snapshot(),
            choices=tuple(sched.choices),
            elapsed_sec=time.perf_counter() - started,
            flight_dump=maybe_dump(
                tracer,
                label=f"chaos-{algorithm.name}-seed{seed}",
                reason="exception",
                meta={"seed": seed, "error": f"{type(exc).__name__}: {exc}"},
            ),
        )
    failures, opacity_checked = conformance_failures(algorithm, spec, result)
    _finish_profile()
    flight_dump = None
    if failures:
        flight_dump = maybe_dump(
            tracer,
            label=f"chaos-{algorithm.name}-seed{seed}",
            reason=failures[0].check,
            meta={"seed": seed, "failures": [str(f) for f in failures]},
        )
    return ChaosResult(
        algorithm=algorithm.name,
        seed=seed,
        plan=plan,
        ok=not failures,
        failures=failures,
        commits=result.commits,
        aborts=result.aborts,
        permanently_aborted=result.permanently_aborted,
        total_steps=result.total_steps,
        injected=dict(injector.stats),
        recovery=policy.snapshot(),
        choices=tuple(sched.choices),
        opacity_checked=opacity_checked,
        elapsed_sec=time.perf_counter() - started,
        flight_dump=flight_dump,
    )


# -- workload construction -----------------------------------------------------


def chaos_setup(
    strategy: str, config: WorkloadConfig, workload: str = "readwrite"
) -> Tuple[TMAlgorithm, SequentialSpec, list]:
    """(algorithm, spec, programs) for one strategy.

    Every registry strategy is covered: ``hybrid`` needs a
    :class:`~repro.specs.product.ProductSpec` workload (boosted map +
    HTM counter words), so it gets a purpose-built one regardless of the
    requested workload; everything else runs the requested workload.
    """
    from repro.core.language import call, tx
    from repro.specs import CounterSpec, KVMapSpec, get_spec
    from repro.specs.product import ProductSpec

    if strategy == "hybrid":
        import random as _random

        spec = ProductSpec({"kv": KVMapSpec(), "ctr": CounterSpec()})
        rng = _random.Random(config.seed)
        programs = []
        for i in range(config.transactions):
            key = ("k", rng.randrange(max(1, config.keys)))
            body = [call("kv.put", key, i), call("ctr.inc")]
            if rng.random() < config.read_ratio:
                body.append(call("kv.get", key))
            programs.append(tx(*body))
        algorithm: TMAlgorithm = ALL_ALGORITHMS["hybrid"](
            htm_components=frozenset({"ctr"})
        )
        return algorithm, spec, programs

    spec_name = {
        "readwrite": "memory",
        "map": "kvmap",
        "set": "set",
        "counter": "counter",
        "bank": "bank",
    }[workload]
    algorithm = ALL_ALGORITHMS[strategy]()
    return algorithm, get_spec(spec_name), make_workload(workload, config)


# -- suite runner (shared by `repro chaos` and bench_faults) -------------------


@dataclass
class SuiteReport:
    """Aggregated chaos suite over strategies × seeded plans."""

    plans_per_strategy: int
    base_seed: int
    scheduler: str
    workload: str
    strategies: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    failures: List[ChaosResult] = field(default_factory=list)
    elapsed_sec: float = 0.0

    @property
    def total_plans(self) -> int:
        return sum(row["plans"] for row in self.strategies.values())

    @property
    def total_injected(self) -> int:
        return sum(row["injected"] for row in self.strategies.values())

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plans_per_strategy": self.plans_per_strategy,
            "base_seed": self.base_seed,
            "scheduler": self.scheduler,
            "workload": self.workload,
            "total_plans": self.total_plans,
            "total_injected": self.total_injected,
            "ok": self.ok,
            "strategies": self.strategies,
            "failures": [f.to_dict() for f in self.failures],
            "elapsed_sec": round(self.elapsed_sec, 3),
        }


def run_suite(
    strategies: Sequence[str],
    config: WorkloadConfig,
    plans_per_strategy: int = 20,
    base_seed: int = 0,
    events_per_plan: int = 4,
    scheduler: str = "nemesis",
    workload: str = "readwrite",
    max_retries: int = 12,
    on_result: Optional[Callable[[str, ChaosResult], None]] = None,
    flight_dir: Optional[str] = None,
    profile: Optional[Profile] = None,
) -> SuiteReport:
    """The default nemesis suite: for each strategy, ``plans_per_strategy``
    seed-derived plans under the adversarial scheduler, each run gated.

    Plan seeds are a deterministic function of ``(base_seed, strategy
    index, plan index)``, so the whole suite reproduces from its base
    seed, and any single failure reproduces from its printed seed alone.

    ``flight_dir``/``profile`` are forwarded to every :func:`run_chaos`
    (flight dumps on failing runs, span attribution across the suite).
    """
    report = SuiteReport(
        plans_per_strategy=plans_per_strategy,
        base_seed=base_seed,
        scheduler=scheduler,
        workload=workload,
    )
    started = time.perf_counter()
    for strategy_index, strategy in enumerate(strategies):
        row: Dict[str, Any] = {
            "plans": 0,
            "gate_failures": 0,
            "commits": 0,
            "aborts": 0,
            "permanently_aborted": 0,
            "injected": 0,
            "injected_by_kind": {},
            "surfaced_injected_aborts": 0,
            "recovery": {},
            "elapsed_sec": 0.0,
        }
        for plan_index in range(plans_per_strategy):
            plan_seed = base_seed + 7919 * strategy_index + 104729 * plan_index
            plan = FaultPlan.generate(
                plan_seed, events=events_per_plan, jobs=config.transactions
            )
            # The workload derives from the *plan* seed so a failure
            # reproduces from its printed seed alone (and each plan gets a
            # distinct program mix for free).
            plan_config = replace(config, seed=plan_seed)
            algorithm, spec, programs = chaos_setup(strategy, plan_config, workload)
            outcome = run_chaos(
                algorithm,
                spec,
                programs,
                plan,
                seed=plan_seed,
                scheduler=scheduler,
                max_retries=max_retries,
                flight_dir=flight_dir,
                profile=profile,
            )
            row["plans"] += 1
            row["commits"] += outcome.commits
            row["aborts"] += outcome.aborts
            row["permanently_aborted"] += outcome.permanently_aborted
            row["injected"] += outcome.injected.get("fault.injected", 0)
            for key, value in outcome.injected.items():
                if key.startswith("fault.injected."):
                    kind = key[len("fault.injected."):]
                    row["injected_by_kind"][kind] = (
                        row["injected_by_kind"].get(kind, 0) + value
                    )
            for key, value in outcome.recovery.items():
                row["recovery"][key] = row["recovery"].get(key, 0) + value
            row["surfaced_injected_aborts"] += _surfaced_injected(outcome)
            row["elapsed_sec"] = round(row["elapsed_sec"] + outcome.elapsed_sec, 4)
            if not outcome.ok:
                row["gate_failures"] += 1
                report.failures.append(outcome)
            if on_result is not None:
                on_result(strategy, outcome)
        report.strategies[strategy] = row
    report.elapsed_sec = time.perf_counter() - started
    return report


def _surfaced_injected(outcome: ChaosResult) -> int:
    """How many injections surfaced as INJECTED-kind aborts.  Fewer than
    injections is legitimate: a driver may absorb a dropped PUSH by
    staying local (§6.5 release), an irrevocable transaction converts
    faults into waits, and stalls never abort anyone."""
    return outcome.injected.get(
        "fault.injected.forced-abort", 0
    ) + outcome.injected.get("fault.injected.crash-commit", 0)


# -- delta-debugging shrinker --------------------------------------------------


def shrink_plan(
    plan: FaultPlan, failing: Callable[[FaultPlan], bool]
) -> FaultPlan:
    """Minimise a failing plan to a minimal witness.

    ``failing(candidate)`` must deterministically re-run the chaos
    scenario and report whether the gate still fails — which it can,
    because a run is a pure function of ``(seed, plan)``.  Classic ddmin
    over the event list, then per-event attribute minimisation (``after``
    → 0, ``count`` → 1, ``duration`` → 1 where applicable).
    """
    if not failing(plan):
        raise ValueError("shrink_plan needs a failing plan to start from")

    def rebuild(events: Sequence) -> FaultPlan:
        return FaultPlan(seed=plan.seed, events=tuple(events))

    # Phase 1: ddmin on the event list.
    events = list(plan.events)
    granularity = 2
    while len(events) >= 2:
        chunk = max(1, len(events) // granularity)
        reduced = False
        for start in range(0, len(events), chunk):
            candidate = events[:start] + events[start + chunk:]
            if candidate and failing(rebuild(candidate)):
                events = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)

    # Phase 2: shrink each surviving event's numeric fields.
    for index in range(len(events)):
        event = events[index]
        for attr, floor in (("after", 0), ("count", 1), ("duration", 0)):
            value = getattr(event, attr)
            for trial in range(floor, value):
                candidate_event = _with_attr(event, attr, trial)
                candidate = events[:index] + [candidate_event] + events[index + 1:]
                if failing(rebuild(candidate)):
                    event = candidate_event
                    events[index] = event
                    break
        # Try dropping the job targeting (a job=None witness is simpler).
        if event.job is not None:
            candidate_event = _with_attr(event, "job", None)
            candidate = events[:index] + [candidate_event] + events[index + 1:]
            if failing(rebuild(candidate)):
                events[index] = candidate_event

    return rebuild(events)


def _with_attr(event, attr: str, value):
    from repro.faults.plan import FaultEvent

    data = event.to_dict()
    data[attr] = value.value if hasattr(value, "value") else value
    if attr == "kind":  # pragma: no cover - kinds are never rewritten
        data[attr] = value
    return FaultEvent.from_dict(data)
