"""repro.faults — fault-injection nemesis, recovery, and chaos conformance.

The package is imported *by* :mod:`repro.tm.base` (the hook points take a
:class:`~repro.faults.plan.NullInjector`), so this ``__init__`` must not
import its own submodules eagerly: ``nemesis`` and ``conformance`` import
the tm/runtime layers right back.  PEP 562 lazy attributes keep the
public surface flat without the cycle.
"""

from __future__ import annotations

_EXPORTS = {
    # plan
    "FaultKind": "repro.faults.plan",
    "FaultEvent": "repro.faults.plan",
    "FaultPlan": "repro.faults.plan",
    "FaultInjector": "repro.faults.plan",
    "InjectedFault": "repro.faults.plan",
    "NullInjector": "repro.faults.plan",
    "NULL_INJECTOR": "repro.faults.plan",
    "INJECTABLE_RULES": "repro.faults.plan",
    # recovery
    "RecoveryPolicy": "repro.faults.recovery",
    "make_policy": "repro.faults.recovery",
    "POLICY_NAMES": "repro.faults.recovery",
    "RECOVERY_TOKEN": "repro.faults.recovery",
    # nemesis
    "NemesisScheduler": "repro.faults.nemesis",
    "ReplayScheduler": "repro.faults.nemesis",
    # conformance
    "ChaosFailure": "repro.faults.conformance",
    "ChaosResult": "repro.faults.conformance",
    "SuiteReport": "repro.faults.conformance",
    "conformance_failures": "repro.faults.conformance",
    "run_chaos": "repro.faults.conformance",
    "run_suite": "repro.faults.conformance",
    "chaos_setup": "repro.faults.conformance",
    "shrink_plan": "repro.faults.conformance",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
