"""Deterministic fault-injection plans and the runtime injector.

The paper's theorem quantifies over *every* disciplined use of the seven
rules, but a friendly scheduler with benign abort paths only ever
exercises easy executions.  This module manufactures the hostile ones: a
:class:`FaultPlan` is a seed-derived, fully deterministic schedule of
:class:`FaultEvent`\\ s, and a :class:`FaultInjector` fires those events
from three hook points shared by **all** TM strategies:

* :meth:`~repro.tm.base.Runtime.apply` — intercept a forward rule
  (``app``/``push``/``pull``/``cmt``) and raise :class:`InjectedFault`
  before it runs (crash-before-CMT, dropped PUSH, spurious HTM abort);
* the :class:`~repro.tm.base.TxStepper` quantum — force an abort or a
  stall at the k-th scheduling quantum of a target job (forced abort,
  delayed publication, dependency-producer abort);
* :meth:`~repro.tm.base.LockTable.try_acquire` — spuriously deny an
  abstract-lock acquisition, driving the bounded-wait/timeout paths.

Hooks fire only on *forward* rules, never on the rollback rules
(``unapp``/``unpush``/``unpull``), so an injected fault always surfaces
as a clean :class:`~repro.core.errors.TMAbort` with
:attr:`~repro.core.errors.AbortKind.INJECTED` — the conformance gate
(:mod:`repro.faults.conformance`) asserts exactly that.

Determinism contract: given the same ``(seed, plan)`` and a deterministic
scheduler, a run fires the same faults at the same points, because event
matching counts deterministic hook hits — no clock, no ambient RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import AbortKind, TMAbort
from repro.obs.metrics import MetricsRegistry


class FaultKind(Enum):
    """The seven nemesis behaviours (ISSUE 4's fault taxonomy)."""

    #: abort the target transaction at its k-th scheduling quantum
    FORCED_ABORT = "forced-abort"
    #: crash just before the CMT rule applies (effects must roll back)
    CRASH_COMMIT = "crash-commit"
    #: drop a PUSH: the publication is refused, the driver must recover
    DROP_PUSH = "drop-push"
    #: stall the target job for ``duration`` quanta (delayed publication /
    #: a slow thread holding its locks and tokens meanwhile)
    STALL = "stall"
    #: spuriously deny a LockTable acquisition (lock-acquire timeout path)
    LOCK_DENY = "lock-deny"
    #: spurious hardware abort at APP time (interrupt/false sharing)
    SPURIOUS_HTM = "spurious-htm"
    #: abort a transaction *only once it has registered consumers* — the
    #: §6.5 dependency-producer abort, forcing the cascade path
    CASCADE_PRODUCER = "cascade-producer"


#: rules the apply-site hook may intercept (forward rules only; the
#: rollback rules are never injection targets so recovery itself is safe)
INJECTABLE_RULES = ("app", "push", "pull", "cmt")

#: apply-site kinds and the rule each one intercepts
_APPLY_RULE = {
    FaultKind.CRASH_COMMIT: "cmt",
    FaultKind.DROP_PUSH: "push",
    FaultKind.SPURIOUS_HTM: "app",
}

_QUANTUM_KINDS = (
    FaultKind.FORCED_ABORT,
    FaultKind.STALL,
    FaultKind.CASCADE_PRODUCER,
)


class InjectedFault(TMAbort):
    """A deliberately injected abort.  Flows through the exact same
    rollback-and-retry machinery as an organic conflict abort — that it
    *can't* be told apart structurally is the point of the exercise."""

    def __init__(self, fault_kind: FaultKind):
        super().__init__(f"injected: {fault_kind.value}", AbortKind.INJECTED)
        self.fault_kind = fault_kind


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``job`` targets a harness job id (``None`` = any job); ``after`` skips
    that many matching hook hits before arming; ``count`` bounds how many
    times the event fires; ``duration`` is the stall length in quanta
    (:attr:`FaultKind.STALL` only).
    """

    kind: FaultKind
    job: Optional[int] = None
    after: int = 0
    count: int = 1
    duration: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind.value,
            "job": self.job,
            "after": self.after,
            "count": self.count,
            "duration": self.duration,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultEvent":
        return FaultEvent(
            kind=FaultKind(data["kind"]),
            job=data.get("job"),
            after=int(data.get("after", 0)),
            count=int(data.get("count", 1)),
            duration=int(data.get("duration", 0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events, derived from a seed.

    ``(seed, plan)`` is the complete reproduction token for a chaos run:
    the seed drives the scheduler and the recovery jitter, the plan drives
    the injector, and neither consults anything else.
    """

    seed: int
    events: Tuple[FaultEvent, ...] = ()

    @staticmethod
    def generate(
        seed: int,
        events: int = 4,
        jobs: Optional[int] = None,
        kinds: Optional[Sequence[FaultKind]] = None,
    ) -> "FaultPlan":
        """Derive a plan from ``seed`` alone (same seed → same plan)."""
        rng = random.Random(seed)
        pool = tuple(kinds) if kinds else tuple(FaultKind)
        out: List[FaultEvent] = []
        for _ in range(events):
            kind = pool[rng.randrange(len(pool))]
            job = None
            if jobs and rng.random() < 0.75:
                job = rng.randrange(jobs)
            after = rng.randrange(10)
            count = 1
            duration = 0
            if kind is FaultKind.LOCK_DENY:
                count = 1 + rng.randrange(3)
            elif kind is FaultKind.STALL:
                duration = 1 + rng.randrange(5)
            elif kind is FaultKind.FORCED_ABORT:
                count = 1 + rng.randrange(2)
            out.append(FaultEvent(kind, job, after, count, duration))
        return FaultPlan(seed=seed, events=tuple(out))

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "events": [e.to_dict() for e in self.events]}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultPlan":
        return FaultPlan(
            seed=int(data["seed"]),
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", ())),
        )

    def describe(self) -> str:
        parts = []
        for e in self.events:
            target = f"@job{e.job}" if e.job is not None else "@any"
            parts.append(f"{e.kind.value}{target}+{e.after}x{e.count}")
        return " ".join(parts) or "(empty)"


class _EventState:
    __slots__ = ("seen", "fired")

    def __init__(self) -> None:
        self.seen = 0
        self.fired = 0


class NullInjector:
    """The permanently disarmed injector — the library-wide default.
    Hook sites guard on :attr:`armed`, so it costs one attribute load."""

    armed: bool = False

    __slots__ = ()

    def bind(self, runtime: Any) -> None:  # pragma: no cover - never armed
        pass


class FaultInjector(NullInjector):
    """Fires a :class:`FaultPlan`'s events from the runtime hook points.

    Stateful but deterministic: per-event ``seen``/``fired`` counters are
    advanced only by hook hits, which are themselves deterministic given
    the scheduler seed.  Fired-fault accounting lives in a
    :class:`~repro.obs.metrics.MetricsRegistry` (pass one in to aggregate
    a whole suite into a single registry); :attr:`stats` is the legacy
    flat-dict view over its counters.  With an enabled tracer the same
    increments are mirrored as ``fault.*`` counts.
    """

    armed = True

    __slots__ = ("plan", "_states", "_runtime", "registry", "fired_log")

    def __init__(self, plan: FaultPlan, registry: Optional[MetricsRegistry] = None):
        self.plan = plan
        self._states = [_EventState() for _ in plan.events]
        self._runtime: Any = None
        self.registry = registry if registry is not None else MetricsRegistry()
        #: chronological record of fired events (diagnostics and tests)
        self.fired_log: List[Dict[str, Any]] = []

    @property
    def stats(self) -> Dict[str, int]:
        """Flat ``fault.* -> count`` dict of everything that fired."""
        return self.registry.counter_values()

    def bind(self, runtime: Any) -> None:
        """Attach to the owning :class:`~repro.tm.base.Runtime` (called
        from its constructor); needed to map lock owners to job ids."""
        self._runtime = runtime

    # -- internals -----------------------------------------------------------

    def _note(self, event: FaultEvent, site: str, tid: Optional[int], job) -> None:
        self.registry.counter("fault.injected").inc()
        self.registry.counter(f"fault.injected.{event.kind.value}").inc()
        self.fired_log.append(
            {"kind": event.kind.value, "site": site, "tid": tid, "job": job}
        )
        rt = self._runtime
        if rt is not None and rt.tracer.enabled:
            rt.tracer.count("fault.injected")
            rt.tracer.count(f"fault.injected.{event.kind.value}")

    def _window(self, index: int, event: FaultEvent) -> bool:
        """Advance the event's match counter; ``True`` iff it fires now."""
        state = self._states[index]
        state.seen += 1
        if state.seen <= event.after or state.fired >= event.count:
            return False
        state.fired += 1
        return True

    # -- hook points -----------------------------------------------------------

    def on_apply(self, rt: Any, rule: str, args: Tuple) -> None:
        """Before a forward machine rule; may raise :class:`InjectedFault`."""
        if rule not in INJECTABLE_RULES:
            return
        tid = args[0] if args else None
        job = rt.tid_to_job.get(tid)
        for index, event in enumerate(self.plan.events):
            if _APPLY_RULE.get(event.kind) != rule:
                continue
            if event.job is not None and event.job != job:
                continue
            if self._window(index, event):
                self._note(event, f"apply:{rule}", tid, job)
                raise InjectedFault(event.kind)

    def on_quantum(self, rt: Any, tid: Optional[int], job) -> int:
        """Before each scheduling quantum of a stepper.  Returns stall
        quanta (0 = run normally); may raise :class:`InjectedFault`."""
        stall = 0
        for index, event in enumerate(self.plan.events):
            if event.kind not in _QUANTUM_KINDS:
                continue
            if event.job is not None and event.job != job:
                continue
            if event.kind is FaultKind.CASCADE_PRODUCER and (
                tid is None or not rt.dependencies.consumers(tid)
            ):
                # A producer abort is only meaningful once someone depends
                # on us; until then the event does not match (and does not
                # consume its ``after`` budget).
                continue
            if self._window(index, event):
                if event.kind is FaultKind.STALL:
                    quanta = max(1, event.duration)
                    stall = max(stall, quanta)
                    self.registry.counter("fault.stall_quanta").inc(quanta)
                    self._note(event, "quantum:stall", tid, job)
                    continue
                self._note(event, "quantum", tid, job)
                raise InjectedFault(event.kind)
        return stall

    def on_acquire(self, owner: int, keys: frozenset, shared: bool) -> bool:
        """Before a LockTable acquisition; ``True`` = spuriously deny."""
        rt = self._runtime
        job = rt.tid_to_job.get(owner) if rt is not None else None
        deny = False
        for index, event in enumerate(self.plan.events):
            if event.kind is not FaultKind.LOCK_DENY:
                continue
            if event.job is not None and event.job != job:
                continue
            if self._window(index, event):
                deny = True
                self.registry.counter("fault.lock_denied").inc()
                self._note(event, "acquire", owner, job)
        return deny


#: The shared disarmed injector every Runtime defaults to.
NULL_INJECTOR = NullInjector()
