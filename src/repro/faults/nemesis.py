"""Adversarial and replay schedulers.

:class:`NemesisScheduler` is the hostile counterpart of the harness's
friendly schedulers: at every quantum it advances the transaction whose
pending work conflicts with the *most* in-flight work, scored with the
spec's own mover oracle (``call_commutes`` — the same commutativity
judgement the machine's criteria and the model checker's POR use).  Under
it, conflict windows that a uniform scheduler hits with low probability
are hit constantly, which is exactly what the conformance gate wants to
stress.

:class:`ReplayScheduler` replays a recorded choice log (every scheduler
records one when ``record_choices`` is set).  Because every component of
a chaos run is deterministic given ``(seed, plan)`` — plan events fire on
counted hook hits, recovery jitter is seeded, the nemesis breaks ties
with a seeded PRNG — a failing run reproduces either by rebuilding the
same nemesis from the seed *or* byte-for-byte from the recorded choices,
and the replay path diverging raises instead of silently exploring a
different interleaving.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.core.errors import MachineError
from repro.core.language import Call, methods_of
from repro.runtime.scheduler import Scheduler
from repro.tm.base import TxStepper


class NemesisScheduler(Scheduler):
    """Contention-maximising scheduler.

    Score of a runnable stepper = number of non-commuting (pending call,
    in-flight operation) pairs against *other* active transactions, per
    the spec's ``call_commutes`` oracle.  Highest score steps next; ties
    break by seeded PRNG, so runs are deterministic per seed.  Choice
    recording is on by default (chaos runs want the replay log).
    """

    record_choices = True

    #: after this many quanta with zero machine-rule progress, fall back
    #: to uniform picks until a rule fires again (see :meth:`pick`)
    stale_factor = 4

    def __init__(self, seed: int = 0):
        super().__init__()
        self.seed = seed
        self._rng = random.Random(seed)
        self._calls_cache: Dict[int, Tuple[Call, ...]] = {}
        self._last_rules = -1
        self._stale = 0

    def _calls_of(self, stepper: TxStepper) -> Tuple[Call, ...]:
        key = id(stepper)
        cached = self._calls_cache.get(key)
        if cached is None:
            # methods_of handles arbitrary programs (choices, stars) where
            # resolve_steps would insist on straight-line code.
            cached = tuple(methods_of(stepper.program))
            self._calls_cache[key] = cached
        return cached

    def _score(self, stepper: TxStepper) -> int:
        rt = stepper.runtime
        calls = self._calls_of(stepper)
        if not calls:
            return 0
        spec = rt.spec
        machine = rt.machine
        mine = stepper.tid
        score = 0
        for tid in rt.active_tids:
            if tid == mine:
                continue
            thread = machine.thread(tid)
            for op in thread.local.own_ops():
                for call_node in calls:
                    if not spec.call_commutes(call_node.method, call_node.args, op):
                        score += 1
        return score

    def pick(self, runnable: Sequence[TxStepper]) -> TxStepper:
        # Livelock-breaker: an adversary that *starves* is useless — e.g.
        # repeatedly scheduling a transaction spinning on the global token
        # while never giving the holder a quantum proves nothing.  Machine
        # rule applications are the progress signal (spin yields and
        # backoff quanta apply none); after `stale_factor * |runnable|`
        # progress-free quanta, picks go seeded-uniform until a rule
        # fires, which hands every spinner's counterpart a turn
        # eventually while staying deterministic per seed.
        rules_now = sum(runnable[0].runtime.rule_counts.values())
        if rules_now == self._last_rules:
            self._stale += 1
        else:
            self._last_rules = rules_now
            self._stale = 0
        if self._stale >= self.stale_factor * max(1, len(runnable)):
            return runnable[self._rng.randrange(len(runnable))]
        best: list = []
        best_score = -1
        for stepper in runnable:
            score = self._score(stepper)
            if score > best_score:
                best, best_score = [stepper], score
            elif score == best_score:
                best.append(stepper)
        if len(best) == 1:
            return best[0]
        return best[self._rng.randrange(len(best))]


class ReplayScheduler(Scheduler):
    """Replay a recorded choice log, strictly.

    Any divergence (log exhausted while steppers still run, or a recorded
    job not runnable at its turn) raises :class:`MachineError` — a replay
    that silently substitutes choices would defeat its purpose as a
    reproduction witness.
    """

    def __init__(self, choices: Sequence[Optional[int]]):
        super().__init__()
        self._log = list(choices)
        self._cursor = 0

    def pick(self, runnable: Sequence[TxStepper]) -> TxStepper:
        if self._cursor >= len(self._log):
            raise MachineError(
                "replay diverged: choice log exhausted with "
                f"{len(runnable)} steppers still runnable"
            )
        job = self._log[self._cursor]
        self._cursor += 1
        for stepper in runnable:
            if stepper.job_id == job:
                return stepper
        raise MachineError(f"replay diverged: job {job} not runnable")
