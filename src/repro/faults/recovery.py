"""Recovery policies: what a transaction does *after* the fault.

A :class:`RecoveryPolicy` replaces the :class:`~repro.tm.base.TxStepper`'s
built-in backoff formula with a configurable discipline:

* **exponential backoff with jitter** — the classic contention-management
  answer to symmetric conflicts, with a seeded jitter fraction so two
  victims of the same fault don't retry in lockstep (and so runs stay
  reproducible from the seed);
* **retry budgets** — the stepper's ``max_retries`` remains the hard
  ceiling; the policy tracks give-ups so the harness can report
  ``recovery.giveup`` alongside ``permanently_aborted``;
* **escalation** — after ``escalate_after`` doomed attempts the stepper
  serialises the transaction under a single global *recovery token*
  (the lock-elision fallback shape HTM deployments use): escalated
  transactions run one at a time, so repeat offenders stop aborting each
  other.  Escalation cannot impose pessimism on an arbitrary strategy's
  internals — optimists may still abort against non-escalated traffic —
  but it bounds the mutual-destruction cases, and the counters make the
  effect measurable.

All decisions are recorded in a
:class:`~repro.obs.metrics.MetricsRegistry` (tracer-free; pass one in to
aggregate a suite) with :attr:`RecoveryPolicy.stats` as the legacy
flat-dict view, and mirrored as ``recovery.*`` tracer counts by the
stepper when tracing is enabled (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: the token escalated transactions serialise under (see
#: :class:`~repro.tm.base.TxStepper`)
RECOVERY_TOKEN = "recovery-fallback"


class RecoveryPolicy:
    """Backoff/retry/escalation discipline for aborted transactions.

    Deterministic given ``seed`` and the abort order (which a seeded
    scheduler makes deterministic), so chaos runs reproduce exactly.
    """

    def __init__(
        self,
        name: str = "default",
        base: int = 2,
        cap: int = 64,
        jitter: float = 0.5,
        escalate_after: Optional[int] = 6,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ):
        if base < 1:
            raise ValueError("backoff base must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        self.name = name
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self.escalate_after = escalate_after
        self.seed = seed
        self._rng = random.Random(seed)
        self.registry = registry if registry is not None else MetricsRegistry()

    @property
    def stats(self) -> Dict[str, int]:
        """Flat ``recovery.* -> count`` dict of every decision made."""
        return self.registry.counter_values()

    def on_abort(self, job_id: Optional[int], aborts: int, kind) -> Tuple[int, bool]:
        """Decide the response to the ``aborts``-th abort of ``job_id``:
        returns ``(backoff_quanta, escalate)``."""
        raw = min(self.cap, self.base ** min(aborts, 16)) if self.cap > 0 else 0
        span = int(raw * self.jitter)
        quanta = raw - span + (self._rng.randrange(span + 1) if span > 0 else 0)
        escalate = (
            self.escalate_after is not None and aborts >= self.escalate_after
        )
        self.registry.counter("recovery.retry").inc()
        self.registry.counter("recovery.backoff_quanta").inc(quanta)
        if escalate:
            self.registry.counter("recovery.escalation").inc()
        return quanta, escalate

    def on_giveup(self, job_id: Optional[int]) -> None:
        """The stepper exhausted its retry budget (permanent abort)."""
        self.registry.counter("recovery.giveup").inc()

    def snapshot(self) -> Dict[str, int]:
        return self.stats


#: Named presets for the CLI and benchmarks.
def make_policy(name: str = "default", seed: int = 0) -> RecoveryPolicy:
    """Build one of the preset policies (seeded for reproducibility)."""
    if name == "default":
        return RecoveryPolicy("default", seed=seed)
    if name == "aggressive":
        # Short fuse: tiny backoff, escalate almost immediately.
        return RecoveryPolicy("aggressive", base=2, cap=8, jitter=0.25,
                              escalate_after=3, seed=seed)
    if name == "patient":
        # Long backoff, never escalate: pure contention management.
        return RecoveryPolicy("patient", base=2, cap=256, jitter=0.5,
                              escalate_after=None, seed=seed)
    if name == "none":
        # No backoff, no escalation: immediate hammering retries.
        return RecoveryPolicy("none", base=1, cap=0, jitter=0.0,
                              escalate_after=None, seed=seed)
    raise ValueError(f"unknown recovery policy {name!r}")


POLICY_NAMES = ("default", "aggressive", "patient", "none")
