"""Exhaustive small-scope exploration of the PUSH/PULL machine.

:func:`explore` enumerates *every* interleaving of *every* enabled rule
instance — including the backward rules UNAPP/UNPUSH/UNPULL, which is what
distinguishes this from a mere scheduler sweep: the paper's invariants are
specifically engineered to be closed under rewinding, and the checker
exercises exactly those rewinding paths.

States are memoised on payload-level keys (operation ids are abstracted),
so APP/UNAPP cycles revisit old states and the reachable space is finite
for loop-free programs.

Checked properties (all optional, see :class:`ExploreOptions`):

* the §5.3 invariants (``I_LG``, ``I_slideR``, ``I_reorderPUSH``,
  ``I_localOrder``, ``I_slidePushed``, ``I_chronPush``,
  ``I_localReorder``) on every reached state;
* the commit-preservation invariant of §5.4 (expensive; tiny scopes only);
* **the simulation of Theorem 5.17**: at every state whose exploration
  terminated (final — all threads finished — or stuck), the committed
  global log is covered (``≼``) by some atomic-machine execution of the
  set of transactions that committed along the path;
* the opaque-fragment restriction (§6.1): when ``forbid_uncommitted_pull``
  is set, PULLs of uncommitted entries are pruned, and the checker
  verifies every transaction's observed view is consistent
  (:func:`repro.core.opacity.check_view_consistent`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.atomic import atomic_final_logs, payloads
from repro.core.errors import (
    CriterionViolation,
    MachineError,
    SerializabilityViolation,
    SpecError,
)
from repro.core.invariants import check_all_invariants
from repro.core.language import Code, Skip, Tx
from repro.core.machine import Machine
from repro.core.ops import IdGenerator, Op
from repro.core.precongruence import precongruent
from repro.core.rewind import check_cmtpres_all
from repro.core.spec import SequentialSpec
from repro.obs.tracer import CAT_MC, NULL_TRACER, Tracer


@dataclass
class ExploreOptions:
    include_backward: bool = True
    check_invariants: bool = True
    check_cmtpres: bool = False
    check_atomic_cover: bool = True
    check_every_state_cover: bool = False
    forbid_uncommitted_pull: bool = False
    #: "all" — PULL any global entry (the full model; state count grows
    #: with the permutations of pull interleavings, so keep scopes tiny);
    #: "committed" — the opaque fragment's PULLs only; "none" — disable
    #: PULL entirely (adequate for checking the push-side rules).
    pull_policy: str = "all"
    #: Finiteness cut.  The raw model's reachable space is *infinite*:
    #: APP/UNAPP cycles mint fresh ids for the same payload, and a thread
    #: may PULL each incarnation, accumulating unboundedly many dangling
    #: ``pld`` entries.  Bounding the number of simultaneously held pulled
    #: entries per thread restores finiteness while keeping every
    #: behaviour in which pulls are actually consumed.  ``None`` ⇒ use the
    #: total number of method occurrences across the scope's programs.
    max_pulled_per_thread: Optional[int] = None
    #: run the machine with the paper's gray criteria disabled — the
    #: experiment behind the paper's "not strictly necessary" remarks:
    #: the §5.3 *mover* invariants may fail without them, but the
    #: simulation (serializability) must still hold.
    check_gray_criteria: bool = True
    max_states: int = 100_000
    bigstep_fuel: int = 12
    #: observability: exploration statistics (states / frontier / dedup
    #: hits / depth) are emitted as ``mc`` counter events on this tracer
    #: every ``trace_stats_every`` visited states and once at the end.
    tracer: Tracer = NULL_TRACER
    trace_stats_every: int = 1000
    #: additionally trace every machine rule application *inside* the
    #: exploration (very high volume — one span per attempted transition);
    #: off by default even when a tracer is given.
    trace_rules: bool = False


@dataclass
class ExplorationReport:
    states: int = 0
    transitions: int = 0
    final_states: int = 0
    stuck_states: int = 0
    #: successor keys already in the visited set (memoisation effectiveness)
    dedup_hits: int = 0
    #: deepest rule chain from the initial state along the DFS tree
    max_depth: int = 0
    #: high-water mark of the DFS stack
    peak_frontier: int = 0
    rule_counts: Dict[str, int] = field(default_factory=dict)
    invariant_violations: List[str] = field(default_factory=list)
    cover_violations: List[str] = field(default_factory=list)
    cmtpres_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.invariant_violations
            or self.cover_violations
            or self.cmtpres_violations
        )


@dataclass
class _Node:
    machine: Machine
    committed: Tuple[int, ...]  # tids of committed threads, in commit order

    def key(self) -> Tuple:
        return (self.machine.state_key(), self.committed)


def _successors(
    node: _Node, options: ExploreOptions
) -> Iterator[Tuple[str, _Node]]:
    machine = node.machine
    for thread in machine.threads:
        tid = thread.tid
        if thread.done:
            # A finished transaction {skip, σ, []} only leaves (MS_END);
            # letting it PULL or re-CMT would manufacture spurious states.
            try:
                yield "END", _Node(machine.end_thread(tid), node.committed)
            except MachineError:  # pragma: no cover
                pass
            continue
        # APP — every step choice.
        for choice in sorted(machine.app_choices(tid), key=repr):
            try:
                yield "APP", _Node(machine.app(tid, choice), node.committed)
            except (CriterionViolation, MachineError, SpecError):
                pass
        # PUSH — every npshd entry.
        for entry in thread.local:
            if entry.is_not_pushed:
                try:
                    yield "PUSH", _Node(machine.push(tid, entry.op), node.committed)
                except (CriterionViolation, MachineError):
                    pass
        # PULL — every global entry not in L (per policy and pull budget).
        pull_budget = options.max_pulled_per_thread
        if options.pull_policy != "none" and (
            pull_budget is None or len(thread.local.pulled_ops()) < pull_budget
        ):
            committed_only = (
                options.forbid_uncommitted_pull
                or options.pull_policy == "committed"
            )
            for g_entry in machine.global_log:
                if g_entry.op in thread.local:
                    continue
                if committed_only and not g_entry.is_committed:
                    continue
                try:
                    yield "PULL", _Node(
                        machine.pull(tid, g_entry.op), node.committed
                    )
                except (CriterionViolation, MachineError):
                    pass
        # CMT.
        try:
            yield "CMT", _Node(machine.cmt(tid), node.committed + (tid,))
        except (CriterionViolation, MachineError):
            pass
        # MS_END for finished threads.
        if thread.done:
            try:
                yield "END", _Node(machine.end_thread(tid), node.committed)
            except MachineError:
                pass
        if options.include_backward:
            # UNAPP (last entry only, by the rule's shape).
            try:
                yield "UNAPP", _Node(machine.unapp(tid), node.committed)
            except (CriterionViolation, MachineError):
                pass
            # UNPUSH — every pshd entry.
            for entry in thread.local:
                if entry.is_pushed:
                    try:
                        yield "UNPUSH", _Node(
                            machine.unpush(tid, entry.op), node.committed
                        )
                    except (CriterionViolation, MachineError):
                        pass
            # UNPULL — every pld entry.
            for entry in thread.local:
                if entry.is_pulled:
                    try:
                        yield "UNPULL", _Node(
                            machine.unpull(tid, entry.op), node.committed
                        )
                    except (CriterionViolation, MachineError):
                        pass


def explore(
    spec: SequentialSpec,
    programs: Sequence[Code],
    options: Optional[ExploreOptions] = None,
) -> ExplorationReport:
    """Exhaustively explore all interleavings of ``programs`` (one
    transaction per thread) and check the requested properties."""
    options = options or ExploreOptions()
    if options.max_pulled_per_thread is None:
        from repro.core.language import methods_of

        total_methods = sum(len(methods_of(p)) for p in programs)
        options = ExploreOptions(**{
            **options.__dict__,
            "max_pulled_per_thread": total_methods,
        })
    report = ExplorationReport()
    tracer = options.tracer
    machine = Machine(
        spec,
        check_gray_criteria=options.check_gray_criteria,
        tracer=tracer if options.trace_rules else NULL_TRACER,
    )
    tids = []
    for program in programs:
        machine, tid = machine.spawn(program)
        tids.append(tid)
    program_of = {tid: prog for tid, prog in zip(tids, programs)}

    initial = _Node(machine, ())
    seen: Set[Tuple] = {initial.key()}
    stack: List[Tuple[_Node, int]] = [(initial, 0)]
    cover_cache: Dict[FrozenSet[int], FrozenSet] = {}

    # Exploration stats tracked in locals (attribute stores per visited
    # state are measurable at 400k-state scopes); folded into the report
    # after the loop.
    tracing = tracer.enabled
    max_depth = 0
    dedup_hits = 0
    peak_frontier = 1
    while stack:
        node, depth = stack.pop()
        report.states += 1
        if depth > max_depth:
            max_depth = depth
        if report.states > options.max_states:
            raise MemoryError(
                f"model checker exceeded {options.max_states} states"
            )
        if options.check_invariants:
            report.invariant_violations.extend(
                check_all_invariants(node.machine)
            )
        if options.check_cmtpres:
            report.cmtpres_violations.extend(
                check_cmtpres_all(node.machine, fuel=options.bigstep_fuel)
            )
        successors = list(_successors(node, options))
        report.transitions += len(successors)
        terminal = not successors
        if terminal:
            if node.machine.threads:
                report.stuck_states += 1
            else:
                report.final_states += 1
        if options.check_atomic_cover and (
            terminal or options.check_every_state_cover
        ):
            _check_cover(
                spec, node, program_of, cover_cache, options, report
            )
        for rule, successor in successors:
            report.rule_counts[rule] = report.rule_counts.get(rule, 0) + 1
            key = successor.key()
            if key not in seen:
                seen.add(key)
                stack.append((successor, depth + 1))
            else:
                dedup_hits += 1
        if len(stack) > peak_frontier:
            peak_frontier = len(stack)
        if tracing and report.states % options.trace_stats_every == 0:
            tracer.counter(
                "mc.explore",
                CAT_MC,
                {
                    "states": report.states,
                    "frontier": len(stack),
                    "dedup_hits": dedup_hits,
                    "depth": depth,
                },
            )
    report.max_depth = max_depth
    report.dedup_hits = dedup_hits
    report.peak_frontier = peak_frontier
    if tracer.enabled:
        tracer.instant(
            "mc.done",
            CAT_MC,
            args={
                "states": report.states,
                "transitions": report.transitions,
                "finals": report.final_states,
                "stuck": report.stuck_states,
                "dedup_hits": report.dedup_hits,
                "max_depth": report.max_depth,
                "peak_frontier": report.peak_frontier,
            },
        )
    return report


def _check_cover(
    spec: SequentialSpec,
    node: _Node,
    program_of: Dict[int, Code],
    cache: Dict[FrozenSet[int], FrozenSet],
    options: ExploreOptions,
    report: ExplorationReport,
) -> None:
    """Theorem 5.17 at this state: ``⌊G⌋_gCmt`` covered by an atomic run of
    the committed transactions.

    Coverage is checked in the *strong* (conventional) form: the atomic
    candidate must consist of the same operation payloads (method, args,
    **and return values**) as the committed log, up to reordering, and the
    committed log must be ``≼``-below it.  The paper's bare
    ``⌊G⌋_gCmt ≼ ℓ`` is implied but strictly weaker on its own: ``≼``
    compares future observability only, so e.g. a write-skew log — same
    final state as a serial run but reads nobody could have made serially
    — would slip through without the payload condition.
    """
    committed_ops = node.machine.global_log.committed_ops()
    committed_payloads = sorted(map(repr, payloads(committed_ops)))
    subset = frozenset(node.committed)
    if subset not in cache:
        cache[subset] = atomic_final_logs(
            spec,
            [program_of[tid] for tid in sorted(subset)],
            fuel=options.bigstep_fuel,
        )
    ids = IdGenerator(start=50_000_000)
    for payload_log in cache[subset]:
        if sorted(map(repr, payload_log)) != committed_payloads:
            continue
        candidate = tuple(
            Op(method, args, ret, ids.fresh())
            for method, args, ret in payload_log
        )
        if spec.allowed(candidate) and precongruent(
            spec, committed_ops, candidate, tracer=options.tracer
        ):
            return
    report.cover_violations.append(
        f"committed log {payloads(committed_ops)} not covered by any atomic "
        f"run of committed transactions {sorted(subset)}"
    )


def check_serializability_small_scope(
    spec: SequentialSpec,
    programs: Sequence[Code],
    options: Optional[ExploreOptions] = None,
) -> ExplorationReport:
    """Run :func:`explore` and raise on any violation — the executable form
    of Theorem 5.17 for this scope."""
    report = explore(spec, programs, options)
    if report.invariant_violations:
        raise SerializabilityViolation(
            "invariant violations: " + "; ".join(report.invariant_violations[:5])
        )
    if report.cover_violations:
        raise SerializabilityViolation(
            "simulation violations: " + "; ".join(report.cover_violations[:5])
        )
    if report.cmtpres_violations:
        raise SerializabilityViolation(
            "cmtpres violations: " + "; ".join(report.cmtpres_violations[:5])
        )
    return report
