"""Exhaustive small-scope exploration of the PUSH/PULL machine.

:func:`explore` enumerates *every* interleaving of *every* enabled rule
instance — including the backward rules UNAPP/UNPUSH/UNPULL, which is what
distinguishes this from a mere scheduler sweep: the paper's invariants are
specifically engineered to be closed under rewinding, and the checker
exercises exactly those rewinding paths.

States are memoised on payload-level keys (operation ids are abstracted),
so APP/UNAPP cycles revisit old states and the reachable space is finite
for loop-free programs.

Checked properties (all optional, see :class:`ExploreOptions`):

* the §5.3 invariants (``I_LG``, ``I_slideR``, ``I_reorderPUSH``,
  ``I_localOrder``, ``I_slidePushed``, ``I_chronPush``,
  ``I_localReorder``) on every reached state;
* the commit-preservation invariant of §5.4 (expensive; tiny scopes only);
* **the simulation of Theorem 5.17**: at every state whose exploration
  terminated (final — all threads finished — or stuck), the committed
  global log is covered (``≼``) by some atomic-machine execution of the
  set of transactions that committed along the path;
* the opaque-fragment restriction (§6.1): when ``forbid_uncommitted_pull``
  is set, PULLs of uncommitted entries are pruned, and the checker
  verifies every transaction's observed view is consistent
  (:func:`repro.core.opacity.check_view_consistent`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.atomic import atomic_final_logs, payloads
from repro.core.errors import (
    CriterionViolation,
    MachineError,
    SerializabilityViolation,
    SpecError,
)
from repro.core.invariants import check_all_invariants_cached
from repro.core.language import Code, Skip, Tx, sorted_choices
from repro.core.machine import Machine
from repro.core.ops import IdGenerator, Op
from repro.core.precongruence import precongruent
from repro.core.rewind import check_cmtpres_all
from repro.core.spec import SequentialSpec
from repro.checking.reduction import Reducer
from repro.obs.tracer import CAT_MC, CAT_POR, NULL_TRACER, Tracer


@dataclass
class ExploreOptions:
    include_backward: bool = True
    check_invariants: bool = True
    check_cmtpres: bool = False
    check_atomic_cover: bool = True
    check_every_state_cover: bool = False
    forbid_uncommitted_pull: bool = False
    #: "all" — PULL any global entry (the full model; state count grows
    #: with the permutations of pull interleavings, so keep scopes tiny);
    #: "committed" — the opaque fragment's PULLs only; "none" — disable
    #: PULL entirely (adequate for checking the push-side rules).
    pull_policy: str = "all"
    #: Finiteness cut.  The raw model's reachable space is *infinite*:
    #: APP/UNAPP cycles mint fresh ids for the same payload, and a thread
    #: may PULL each incarnation, accumulating unboundedly many dangling
    #: ``pld`` entries.  Bounding the number of simultaneously held pulled
    #: entries per thread restores finiteness while keeping every
    #: behaviour in which pulls are actually consumed.  ``None`` ⇒ use the
    #: total number of method occurrences across the scope's programs.
    max_pulled_per_thread: Optional[int] = None
    #: run the machine with the paper's gray criteria disabled — the
    #: experiment behind the paper's "not strictly necessary" remarks:
    #: the §5.3 *mover* invariants may fail without them, but the
    #: simulation (serializability) must still hold.
    check_gray_criteria: bool = True
    max_states: int = 100_000
    bigstep_fuel: int = 12
    #: observability: exploration statistics (states / frontier / dedup
    #: hits / depth) are emitted as ``mc`` counter events on this tracer
    #: every ``trace_stats_every`` visited states and once at the end.
    tracer: Tracer = NULL_TRACER
    trace_stats_every: int = 1000
    #: additionally trace every machine rule application *inside* the
    #: exploration (very high volume — one span per attempted transition);
    #: off by default even when a tracer is given.
    trace_rules: bool = False
    #: mover-guided partial-order reduction (see ``checking/reduction.py``):
    #: visited-state keys are quotiented by both-mover trace equivalence
    #: (and thread symmetry, when applicable), and states where one
    #: thread's enabled moves are all thread-local are expanded through
    #: that thread alone.  Verdicts and violation witnesses are identical
    #: to the unreduced run — only state/transition counts shrink.
    por: bool = True
    #: extend the quotient to thread-permutation symmetry for scopes whose
    #: threads run syntactically identical programs (no-op otherwise).
    por_symmetry: bool = True
    #: opacity oracle over terminal states (final and stuck): ``None`` —
    #: off; ``"bounded"`` — the view-consistency search of
    #: :func:`repro.core.opacity.check_history_opaque`; ``"tms2"`` — the
    #: TMS2 linearizability decision procedure
    #: (:func:`repro.checking.tms2.check_history_opaque_tms2`);
    #: ``"both"`` — run both and additionally record any verdict
    #: divergence (which fails the run and, when a flight recorder is
    #: armed, dumps its black box).
    opacity_checker: Optional[str] = None
    #: commit-count bound forwarded to the opacity checkers
    opacity_bound: int = 8


@dataclass
class ExplorationReport:
    states: int = 0
    transitions: int = 0
    final_states: int = 0
    stuck_states: int = 0
    #: successor keys already in the visited set (memoisation effectiveness)
    dedup_hits: int = 0
    #: deepest rule chain from the initial state along the DFS tree
    max_depth: int = 0
    #: high-water mark of the DFS stack
    peak_frontier: int = 0
    rule_counts: Dict[str, int] = field(default_factory=dict)
    invariant_violations: List[str] = field(default_factory=list)
    cover_violations: List[str] = field(default_factory=list)
    cmtpres_violations: List[str] = field(default_factory=list)
    #: opacity-oracle findings over terminal states (only populated when
    #: ``ExploreOptions.opacity_checker`` is set)
    opacity_violations: List[str] = field(default_factory=list)
    #: bounded-vs-TMS2 verdict disagreements (``opacity_checker="both"``)
    opacity_divergences: List[str] = field(default_factory=list)
    #: terminal states the opacity oracle examined
    opacity_terminals: int = 0
    #: whether the mover-guided reduction was active for this run
    por: bool = False
    #: states at which the ample filter expanded a single thread
    ample_hits: int = 0
    #: thread expansions skipped by the ample filter (deferred, not lost:
    #: they are re-explored from the ample chain's fully expanded end)
    ample_deferred: int = 0
    #: states expanded in full while the reduction was active
    full_expansions: int = 0
    #: summed worker compute seconds (parallel runs only) — utilization is
    #: ``worker_busy / (jobs × wall-clock)``
    worker_busy: float = 0.0
    #: path of the flight-recorder dump written for a failed verdict
    #: (``None`` when the run was clean or no flight recorder was armed)
    flight_dump: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not (
            self.invariant_violations
            or self.cover_violations
            or self.cmtpres_violations
            or self.opacity_violations
            or self.opacity_divergences
        )


_OP_ID = re.compile(r"#\d+")


def normalize_witness(message: str) -> str:
    """A violation message with operation ids (``#n``) blanked.

    Ids record mint order, which varies across processes (the parallel
    workers re-mint ids on snapshot restore) while the payload content of
    the witness does not — so verdict comparisons go through this."""
    return _OP_ID.sub("#·", message)


def verdict_fingerprint(report: "ExplorationReport") -> Tuple:
    """The order- and id-insensitive verdict of a run: ``ok`` plus the
    sorted sets of normalized violation witnesses.  This is the equality
    the POR-identity gate, the benchmarks and the tests compare — state
    and transition counts are deliberately excluded (the quotient merges
    terminals, and exploration order picks representatives; see
    ``checking/parallel.py`` on both)."""
    return (
        report.ok,
        tuple(sorted({normalize_witness(m) for m in report.invariant_violations})),
        tuple(sorted({normalize_witness(m) for m in report.cover_violations})),
        tuple(sorted({normalize_witness(m) for m in report.cmtpres_violations})),
        tuple(sorted({normalize_witness(m) for m in report.opacity_violations})),
        tuple(sorted({normalize_witness(m) for m in report.opacity_divergences})),
    )


@dataclass
class _Node:
    machine: Machine
    committed: Tuple[int, ...]  # tids of committed threads, in commit order
    #: each committed thread's own operations, captured at its CMT (the
    #: machine clears the local log on commit, so this is the only record
    #: of which operations formed which transaction — the association the
    #: terminal-state opacity oracle needs).  Parallel to ``committed``;
    #: path-dependent bookkeeping, deliberately NOT part of the state key.
    committed_ops: Tuple[Tuple[Op, ...], ...] = ()

    def key(self) -> Tuple:
        return (self.machine.state_key(), self.committed)


# ``step(code)`` in the checker's deterministic exploration order — now an
# attribute memo on the code node itself (one pointer load per revisit, no
# recursive re-hash of the AST); kept under the old name for callers.
_sorted_choices = sorted_choices


def _successors(
    node: _Node,
    options: ExploreOptions,
    seen: Optional[Set[Tuple]] = None,
    reducer: Optional[Reducer] = None,
) -> List[Tuple[str, Tuple, Optional[_Node]]]:
    """Enabled rule instances as ``(rule, node_key, successor)`` triples,
    probed through the machine's check-then-construct path: a disabled
    instance costs a few (cached) criterion queries — no exception
    allocation, no discarded successor states, no minted operation ids.

    When ``seen`` is given (the checker's visited-key set), every rule
    with a derivable key goes key-first: the successor's canonical key is
    computed from this state's cached key plus cached log projections
    (:meth:`Machine.app_key`, ``push_key``, ``pull_key``, ``unapp_key``,
    ``unpush_key``, ``unpull_key``) and the machine is only constructed
    (via the matching ``*_state``) when that key is new.  Most transitions
    in an exhaustive exploration revisit states — backward moves almost
    always do — so this skips most successor construction outright; an
    already-seen instance comes back with successor ``None``: it still
    counts as a transition, there is just no state to push.  ``seen`` is
    only read here; ``explore`` mutates it strictly after this returns.
    """
    machine = node.machine
    committed = node.committed
    committed_ops = node.committed_ops
    key_first = seen is not None and not machine.tracer.enabled
    out: List[Tuple[str, Tuple, Optional[_Node]]] = []
    emit = out.append
    canon = reducer.canonical if reducer is not None else None
    if canon is not None:

        def node_key(skey: Tuple, comm: Tuple) -> Tuple:
            return canon((skey, comm))

    else:

        def node_key(skey: Tuple, comm: Tuple) -> Tuple:
            return (skey, comm)

    threads = machine.threads
    if (
        reducer is not None
        and reducer.ample
        and options.include_backward
        and len(threads) > 1
    ):
        ample = reducer.ample_tid(
            machine,
            pull_allowed=options.pull_policy != "none",
            pull_committed_only=(
                options.forbid_uncommitted_pull
                or options.pull_policy == "committed"
            ),
            pull_budget=options.max_pulled_per_thread,
        )
        if ample is not None:
            threads = tuple(t for t in threads if t.tid == ample)
    for thread in threads:
        tid = thread.tid
        if thread.done:
            # A finished transaction {skip, σ, []} only leaves (MS_END);
            # letting it PULL or re-CMT would manufacture spurious states.
            if key_first:
                end_skey = machine.end_key(tid)
                nkey = node_key(end_skey, committed)
                if nkey in seen:
                    emit(("END", nkey, None))
                else:
                    emit((
                        "END",
                        nkey,
                        _Node(
                            machine.end_state(tid, end_skey),
                            committed,
                            committed_ops,
                        ),
                    ))
                continue
            try:
                successor = _Node(
                    machine.end_thread(tid), committed, committed_ops
                )
                emit(("END", node_key(*successor.key()), successor))
            except MachineError:  # pragma: no cover
                pass
            continue
        local = thread.local
        if key_first:
            # Batched key derivation: one machine call expands every rule
            # of this thread with the per-state constants hoisted; the
            # matching ``*_state`` constructor runs only for new keys.
            for rule, arg, skey in machine.successor_keys(
                tid,
                options.include_backward,
                options.pull_policy != "none",
                options.forbid_uncommitted_pull
                or options.pull_policy == "committed",
                options.max_pulled_per_thread,
            ):
                if rule == "CMT":
                    comm = committed + (tid,)
                    comm_ops = committed_ops + (local.own_ops(),)
                else:
                    comm = committed
                    comm_ops = committed_ops
                nkey = (skey, comm)
                if canon is not None:
                    nkey = canon(nkey)
                if nkey in seen:
                    emit((rule, nkey, None))
                elif rule == "UNPULL":
                    emit((
                        rule,
                        nkey,
                        _Node(machine.unpull_state(tid, arg, skey), comm, comm_ops),
                    ))
                elif rule == "UNPUSH":
                    emit((
                        rule,
                        nkey,
                        _Node(machine.unpush_state(tid, arg, skey), comm, comm_ops),
                    ))
                elif rule == "PUSH":
                    emit((
                        rule,
                        nkey,
                        _Node(machine.push_state(tid, arg, skey), comm, comm_ops),
                    ))
                elif rule == "APP":
                    emit((
                        rule,
                        nkey,
                        _Node(machine.app_state(tid, arg, skey), comm, comm_ops),
                    ))
                elif rule == "PULL":
                    emit((
                        rule,
                        nkey,
                        _Node(machine.pull_state(tid, arg, skey), comm, comm_ops),
                    ))
                elif rule == "CMT":
                    emit((
                        rule,
                        nkey,
                        _Node(machine.cmt_state(tid, skey), comm, comm_ops),
                    ))
                else:  # UNAPP
                    emit((
                        rule,
                        nkey,
                        _Node(machine.unapp_state(tid, skey), comm, comm_ops),
                    ))
            continue
        # Construct-first path (traced runs and direct callers).
        # APP — every step choice.
        for choice in _sorted_choices(thread.code):
            successor = machine.try_app(tid, choice)
            if successor is not None:
                succ_node = _Node(successor, committed, committed_ops)
                emit(("APP", node_key(*succ_node.key()), succ_node))
        # PUSH — every npshd entry.
        for op in local.not_pushed_ops():
            successor = machine.try_push(tid, op)
            if successor is not None:
                succ_node = _Node(successor, committed, committed_ops)
                emit(("PUSH", node_key(*succ_node.key()), succ_node))
        # PULL — every global entry not in L (per policy and pull budget).
        pull_budget = options.max_pulled_per_thread
        if options.pull_policy != "none" and (
            pull_budget is None or len(local.pulled_ops()) < pull_budget
        ):
            committed_only = (
                options.forbid_uncommitted_pull
                or options.pull_policy == "committed"
            )
            for g_entry in machine.global_log:
                if g_entry.op in local:
                    continue
                if committed_only and not g_entry.is_committed:
                    continue
                successor = machine.try_pull(tid, g_entry.op)
                if successor is not None:
                    succ_node = _Node(successor, committed, committed_ops)
                    emit(("PULL", node_key(*succ_node.key()), succ_node))
        # CMT.
        successor = machine.try_cmt(tid)
        if successor is not None:
            succ_node = _Node(
                successor,
                committed + (tid,),
                committed_ops + (local.own_ops(),),
            )
            emit(("CMT", node_key(*succ_node.key()), succ_node))
        if options.include_backward:
            # UNAPP (last entry only, by the rule's shape).
            successor = machine.try_unapp(tid)
            if successor is not None:
                succ_node = _Node(successor, committed, committed_ops)
                emit(("UNAPP", node_key(*succ_node.key()), succ_node))
            # UNPUSH — every pshd entry.
            for op in local.pushed_ops():
                successor = machine.try_unpush(tid, op)
                if successor is not None:
                    succ_node = _Node(successor, committed, committed_ops)
                    emit(("UNPUSH", node_key(*succ_node.key()), succ_node))
            # UNPULL — every pld entry.
            for op in local.pulled_ops():
                successor = machine.try_unpull(tid, op)
                if successor is not None:
                    succ_node = _Node(successor, committed, committed_ops)
                    emit(("UNPULL", node_key(*succ_node.key()), succ_node))
    return out


def explore(
    spec: SequentialSpec,
    programs: Sequence[Code],
    options: Optional[ExploreOptions] = None,
) -> ExplorationReport:
    """Exhaustively explore all interleavings of ``programs`` (one
    transaction per thread) and check the requested properties."""
    options = options or ExploreOptions()
    if options.max_pulled_per_thread is None:
        from repro.core.language import methods_of

        total_methods = sum(len(methods_of(p)) for p in programs)
        options = ExploreOptions(**{
            **options.__dict__,
            "max_pulled_per_thread": total_methods,
        })
    report = ExplorationReport()
    tracer = options.tracer
    machine = Machine(
        spec,
        check_gray_criteria=options.check_gray_criteria,
        tracer=tracer if options.trace_rules else NULL_TRACER,
    )
    tids = []
    for program in programs:
        machine, tid = machine.spawn(program)
        tids.append(tid)
    program_of = {tid: prog for tid, prog in zip(tids, programs)}

    reducer: Optional[Reducer] = None
    if options.por:
        reducer = Reducer(
            spec,
            programs=tuple(zip(tids, programs)),
            symmetry=options.por_symmetry,
            tracer=tracer,
            movers=machine.movers,
        )

    initial = _Node(machine, (), ())
    seen: Set[Tuple] = {
        reducer.canonical(initial.key()) if reducer else initial.key()
    }
    stack: List[Tuple[_Node, int]] = [(initial, 0)]
    cover_cache: Dict[FrozenSet[int], FrozenSet] = {}
    # Per-thread invariant memo (see check_all_invariants_cached): §5.3
    # clauses depend on one thread's logs plus G, so the sweep is shared
    # across the many product states in which that configuration recurs.
    invariant_cache: Dict[Tuple, Tuple] = {}

    # Exploration stats tracked in locals (attribute stores per visited
    # state are measurable at 400k-state scopes); folded into the report
    # after the loop.
    tracing = tracer.enabled
    max_depth = 0
    dedup_hits = 0
    peak_frontier = 1
    states = 0
    transitions = 0
    stuck_states = 0
    final_states = 0
    rule_counts = report.rule_counts
    max_states = options.max_states
    check_invariants = options.check_invariants
    check_cmtpres = options.check_cmtpres
    check_atomic_cover = options.check_atomic_cover
    check_every_state_cover = options.check_every_state_cover
    seen_add = seen.add
    stack_pop = stack.pop
    stack_append = stack.append
    while stack:
        node, depth = stack_pop()
        states += 1
        if depth > max_depth:
            max_depth = depth
        if states > max_states:
            report.states = states
            raise MemoryError(
                f"model checker exceeded {options.max_states} states"
            )
        if check_invariants:
            violations = check_all_invariants_cached(
                node.machine, invariant_cache
            )
            if violations:
                report.invariant_violations.extend(violations)
        if check_cmtpres:
            report.cmtpres_violations.extend(
                check_cmtpres_all(node.machine, fuel=options.bigstep_fuel)
            )
        successors = _successors(node, options, seen, reducer)
        transitions += len(successors)
        if not successors:
            if node.machine.threads:
                stuck_states += 1
            else:
                final_states += 1
            if check_atomic_cover:
                _check_cover(
                    spec, node, program_of, cover_cache, options, report
                )
            if options.opacity_checker is not None:
                _check_opacity(spec, node, options, report)
        elif check_atomic_cover and check_every_state_cover:
            _check_cover(
                spec, node, program_of, cover_cache, options, report
            )
        next_depth = depth + 1
        for rule, key, successor in successors:
            rule_counts[rule] = rule_counts.get(rule, 0) + 1
            if successor is not None and key not in seen:
                seen_add(key)
                stack_append((successor, next_depth))
            else:
                # Key-first probe matched a visited state, or a sibling
                # transition in this batch already claimed the key.
                dedup_hits += 1
        if len(stack) > peak_frontier:
            peak_frontier = len(stack)
        if tracing and states % options.trace_stats_every == 0:
            tracer.counter(
                "mc.explore",
                CAT_MC,
                {
                    "states": states,
                    "frontier": len(stack),
                    "dedup_hits": dedup_hits,
                    "depth": depth,
                },
            )
            if reducer is not None:
                tracer.counter(
                    "por.explore",
                    CAT_POR,
                    {
                        "ample_hits": reducer.ample_hits,
                        "ample_deferred": reducer.ample_deferred,
                        "full_expansions": reducer.full_expansions,
                    },
                )
    report.states = states
    report.transitions = transitions
    report.stuck_states = stuck_states
    report.final_states = final_states
    report.max_depth = max_depth
    report.dedup_hits = dedup_hits
    report.peak_frontier = peak_frontier
    if reducer is not None:
        report.por = True
        report.ample_hits = reducer.ample_hits
        report.ample_deferred = reducer.ample_deferred
        report.full_expansions = reducer.full_expansions
        reducer.emit_stats(tracer)
    if tracer.enabled:
        # Packed-kernel gauges, sampled once at end of run: intern-table
        # populations are process-wide; the recipe/plan memos live on the
        # exploration's root machine and are shared by reference with
        # every derived state.
        from repro.core.ops import intern_stats
        from repro.core.packed import packed_stats

        tracer.counter(
            "packed.kernel", CAT_MC, {**intern_stats(), **packed_stats(machine)}
        )
        tracer.instant(
            "mc.done",
            CAT_MC,
            args={
                "states": report.states,
                "transitions": report.transitions,
                "finals": report.final_states,
                "stuck": report.stuck_states,
                "dedup_hits": report.dedup_hits,
                "max_depth": report.max_depth,
                "peak_frontier": report.peak_frontier,
            },
        )
    if not report.ok:
        # A failed verdict ships its black box (no-op unless the tracer
        # is a flight recorder with a dump directory).
        from repro.obs.flight import maybe_dump

        report.flight_dump = maybe_dump(
            tracer,
            label=f"modelcheck-{type(spec).__name__}",
            reason="violation",
            meta={
                "states": report.states,
                "violations": len(report.invariant_violations)
                + len(report.cover_violations)
                + len(report.cmtpres_violations),
            },
        )
    return report


def _terminal_history(node: _Node):
    """A synthetic :class:`~repro.core.history.History` for one terminal
    state of the exploration.

    Committed transactions come from the node's commit order with the
    own-operation tuples captured at each CMT; threads still live at a
    stuck state become *active* viewer records whose observed view is
    their local log.  Every record begins before any ends, so the history
    carries no real-time precedence — honest for the checker, since the
    exploration spawns all threads up front and quantifies over every
    interleaving.
    """
    from repro.core.history import History

    history = History()
    machine = node.machine
    committed_recs = [history.begin(tid) for tid in node.committed]
    live = []
    for thread in machine.threads:
        if len(thread.local):
            live.append((thread, history.begin(thread.tid)))
    for record, ops in zip(committed_recs, node.committed_ops):
        history.commit(record, ops)
    global_log = machine.global_log
    for thread, record in live:
        record.observed = tuple(e.op for e in thread.local)
        dirty = []
        for e in thread.local:
            if e.is_pulled:
                entry = global_log.entry_for(e.op)
                if entry is None or not entry.is_committed:
                    dirty.append(e.op)
        record.pulled_uncommitted = tuple(dirty)
    return history


def _check_opacity(
    spec: SequentialSpec,
    node: _Node,
    options: ExploreOptions,
    report: ExplorationReport,
) -> None:
    """The terminal-state opacity oracle (``ExploreOptions.opacity_checker``).

    Builds the synthetic history for this terminal state and consults the
    requested checker(s); under ``"both"`` a verdict disagreement is
    recorded as its own violation class (the reduction says the TMS2
    verdict is authoritative, so its violations populate
    ``opacity_violations`` either way)."""
    from repro.checking.tms2 import TMS2_STATS, check_history_opaque_tms2
    from repro.core.errors import OpacityViolation
    from repro.core.opacity import check_history_opaque

    checker = options.opacity_checker
    history = _terminal_history(node)
    report.opacity_terminals += 1
    bounded = tms2 = None
    try:
        if checker in ("bounded", "both"):
            bounded = check_history_opaque(
                spec, history, node.machine, max_exhaustive=options.opacity_bound
            )
        if checker in ("tms2", "both"):
            tms2 = check_history_opaque_tms2(
                spec, history, node.machine, max_exhaustive=options.opacity_bound
            )
    except OpacityViolation as exc:
        report.opacity_violations.append(f"opacity bound exceeded: {exc}")
        return
    authoritative = tms2 if tms2 is not None else bounded
    report.opacity_violations.extend(authoritative or ())
    if checker != "both":
        return
    TMS2_STATS["opacity.agreement.checks"] += 1
    if bool(bounded) != bool(tms2):
        TMS2_STATS["opacity.agreement.divergences"] += 1
        committed_payloads = sorted(
            op.pretty() for ops in node.committed_ops for op in ops
        )
        report.opacity_divergences.append(
            "opacity checkers disagree at a terminal state: "
            f"bounded={'reject' if bounded else 'accept'} "
            f"tms2={'reject' if tms2 else 'accept'} "
            f"(committed {committed_payloads})"
        )


def _check_cover(
    spec: SequentialSpec,
    node: _Node,
    program_of: Dict[int, Code],
    cache: Dict[FrozenSet[int], FrozenSet],
    options: ExploreOptions,
    report: ExplorationReport,
) -> None:
    """Theorem 5.17 at this state: ``⌊G⌋_gCmt`` covered by an atomic run of
    the committed transactions.

    Coverage is checked in the *strong* (conventional) form: the atomic
    candidate must consist of the same operation payloads (method, args,
    **and return values**) as the committed log, up to reordering, and the
    committed log must be ``≼``-below it.  The paper's bare
    ``⌊G⌋_gCmt ≼ ℓ`` is implied but strictly weaker on its own: ``≼``
    compares future observability only, so e.g. a write-skew log — same
    final state as a serial run but reads nobody could have made serially
    — would slip through without the payload condition.
    """
    committed_ops = node.machine.global_log.committed_ops()
    committed_payloads = sorted(map(repr, payloads(committed_ops)))
    subset = frozenset(node.committed)
    if subset not in cache:
        cache[subset] = atomic_final_logs(
            spec,
            [program_of[tid] for tid in sorted(subset)],
            fuel=options.bigstep_fuel,
        )
    ids = IdGenerator(start=50_000_000)
    for payload_log in cache[subset]:
        if sorted(map(repr, payload_log)) != committed_payloads:
            continue
        candidate = tuple(
            Op(method, args, ret, ids.fresh())
            for method, args, ret in payload_log
        )
        if spec.allowed(candidate) and precongruent(
            spec, committed_ops, candidate, tracer=options.tracer
        ):
            return
    # The witness lists payloads in sorted order (not G order) so that the
    # message is an invariant of the both-mover trace class — POR-on and
    # POR-off runs report textually identical witnesses.
    report.cover_violations.append(
        f"committed log {committed_payloads} not covered by any atomic "
        f"run of committed transactions {sorted(subset)}"
    )


def check_serializability_small_scope(
    spec: SequentialSpec,
    programs: Sequence[Code],
    options: Optional[ExploreOptions] = None,
) -> ExplorationReport:
    """Run :func:`explore` and raise on any violation — the executable form
    of Theorem 5.17 for this scope."""
    report = explore(spec, programs, options)
    if report.invariant_violations:
        raise SerializabilityViolation(
            "invariant violations: " + "; ".join(report.invariant_violations[:5])
        )
    if report.cover_violations:
        raise SerializabilityViolation(
            "simulation violations: " + "; ".join(report.cover_violations[:5])
        )
    if report.cmtpres_violations:
        raise SerializabilityViolation(
            "cmtpres violations: " + "; ".join(report.cmtpres_violations[:5])
        )
    return report
