"""Opacity-frontier search: the smallest registered scope separating a
strategy from opacity.

PR 4's nemesis falsified three ``opaque=True`` labels (earlyrelease,
checkpoint, elastic) with ad-hoc witnesses; this module turns that folk
knowledge into a *registered ladder* of chaos scopes — ordered smallest
to largest — and a deterministic probe: run the strategy once per rung
under the nemesis scheduler with a seeded fault plan, then judge the
recorded history with **both** opacity checkers (the bounded
view-consistency search and the TMS2 linearizability reduction,
:mod:`repro.checking.tms2`).  A strategy's **frontier** is the first
rung where the TMS2 checker rejects; a strategy with no frontier on the
ladder is opaque as far as the registered scopes can tell.

Everything is a pure function of the rung (workload seed, run seed and
fault plan all live in the rung tuple), so the committed
``benchmarks/BENCH_opacity.json`` re-verifies bit-for-bit in CI via
``repro perf --tier opacity``.

The ladder's anchor rungs were found by seeded sweeps and are pinned by
``tests/test_opacity_frontier.py``:

* ``dependent``   falls at rung 0 (3 txs, no faults — a dependent
  commit's pulled-uncommitted view is never serially justifiable);
* ``elastic``     falls at rung 2 (a cut commits a stale early window);
* ``checkpoint``  falls at rung 3 (partial rollback keeps a view that
  mixes pre- and post-checkpoint reads);
* ``earlyrelease`` falls at rung 4 (a released key is overwritten while
  the releasing transaction is still running).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import OpacityViolation
from repro.core.opacity import check_history_opaque
from repro.checking.tms2 import check_history_opaque_tms2

#: commit bound shared with the chaos gate: every ladder rung keeps the
#: committed count at or below this, so the checkers stay exhaustive
FRONTIER_OPACITY_LIMIT = 6


@dataclass(frozen=True)
class ScopeRung:
    """One registered scope on the ladder: a fully seeded chaos run."""

    name: str
    workload: str
    transactions: int
    ops_per_tx: int
    keys: int
    events: int  #: fault-plan length (0 = fault-free)
    workload_seed: int
    run_seed: int  #: scheduler + fault-plan + recovery seed
    read_ratio: float = 0.5

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "workload": self.workload,
            "transactions": self.transactions,
            "ops_per_tx": self.ops_per_tx,
            "keys": self.keys,
            "events": self.events,
            "workload_seed": self.workload_seed,
            "run_seed": self.run_seed,
            "read_ratio": self.read_ratio,
        }


#: the registered ladder, smallest scope first.  Order matters: a
#: frontier is an *index* into this tuple, and the committed benchmark
#: pins both the index and the rung identity.
FRONTIER_LADDER: Tuple[ScopeRung, ...] = (
    ScopeRung("rw3-quiet", "readwrite", 3, 3, 2, 0, 0, 0),
    ScopeRung("rw3-quiet-s1", "readwrite", 3, 3, 2, 0, 1, 1),
    ScopeRung("rw4-quiet-s4", "readwrite", 4, 3, 2, 0, 4, 4),
    ScopeRung("rw4-faults", "readwrite", 4, 3, 2, 3, 0, 0),
    ScopeRung("rw4-wide-s3", "readwrite", 4, 3, 4, 0, 0, 3),
    ScopeRung("rw5-faults-s6", "readwrite", 5, 3, 4, 3, 6, 6),
    ScopeRung("map5-faults-s6", "map", 5, 3, 2, 3, 6, 6),
)

RUNGS_BY_NAME: Dict[str, ScopeRung] = {r.name: r for r in FRONTIER_LADDER}


@dataclass
class ScopeProbe:
    """Both checkers' verdicts for one (strategy, rung) run."""

    strategy: str
    rung: ScopeRung
    commits: int = 0
    bounded_violations: List[str] = field(default_factory=list)
    tms2_violations: List[str] = field(default_factory=list)
    #: False when the run escaped the commit bound (or crashed) and the
    #: checkers could not judge it — never the case on the ladder
    checked: bool = True
    error: Optional[str] = None

    @property
    def tms2_opaque(self) -> bool:
        return self.checked and not self.tms2_violations

    @property
    def sound(self) -> bool:
        """The soundness direction of the reduction: anything the
        bounded checker rejects, TMS2 must reject too (TMS2 is complete;
        the bounded checker only reports real violations)."""
        return not self.checked or not (
            self.bounded_violations and not self.tms2_violations
        )


def probe_scope(
    strategy: str, rung: ScopeRung, max_exhaustive: int = FRONTIER_OPACITY_LIMIT
) -> ScopeProbe:
    """Run ``strategy`` on ``rung`` and judge the history with both
    checkers.  Deterministic: every seed comes from the rung."""
    from repro.faults.conformance import chaos_setup
    from repro.faults.plan import FaultInjector, FaultPlan
    from repro.runtime.harness import run_experiment
    from repro.runtime.scheduler import make_scheduler
    from repro.runtime.workload import WorkloadConfig

    config = WorkloadConfig(
        transactions=rung.transactions,
        ops_per_tx=rung.ops_per_tx,
        keys=rung.keys,
        read_ratio=rung.read_ratio,
        seed=rung.workload_seed,
    )
    algorithm, spec, programs = chaos_setup(strategy, config, rung.workload)
    injector = FaultInjector(
        FaultPlan.generate(rung.run_seed, events=rung.events, jobs=len(programs))
    )
    scheduler = make_scheduler("nemesis", rung.run_seed)
    probe = ScopeProbe(strategy=strategy, rung=rung)
    try:
        result = run_experiment(
            algorithm,
            spec,
            programs,
            concurrency=len(programs),
            scheduler=scheduler,
            seed=rung.run_seed,
            verify=False,  # the probe runs the checkers itself
            compact=False,  # ... over the full, uncompacted log
            max_retries=12,
            injector=injector,
        )
    except Exception as exc:  # CriterionViolation, MachineError, anything
        probe.checked = False
        probe.error = f"{type(exc).__name__}: {exc}"
        return probe
    runtime = result.runtime
    probe.commits = runtime.history.commit_count()
    try:
        probe.bounded_violations = check_history_opaque(
            spec, runtime.history, runtime.machine, max_exhaustive=max_exhaustive
        )
        probe.tms2_violations = check_history_opaque_tms2(
            spec, runtime.history, runtime.machine, max_exhaustive=max_exhaustive
        )
    except OpacityViolation as exc:  # pragma: no cover - ladder stays bounded
        probe.checked = False
        probe.error = str(exc)
    return probe


@dataclass
class FrontierResult:
    """One strategy's walk up the ladder."""

    strategy: str
    probes: List[ScopeProbe] = field(default_factory=list)

    @property
    def frontier_index(self) -> Optional[int]:
        for index, probe in enumerate(self.probes):
            if probe.checked and probe.tms2_violations:
                return index
        return None

    @property
    def frontier(self) -> Optional[ScopeRung]:
        index = self.frontier_index
        return None if index is None else self.probes[index].rung

    @property
    def opaque(self) -> bool:
        """Adjudicated verdict: no ladder rung separates the strategy
        from opacity."""
        return self.frontier_index is None

    def to_dict(self) -> Dict[str, Any]:
        index = self.frontier_index
        witness = None if index is None else self.probes[index]
        return {
            "strategy": self.strategy,
            "opaque": self.opaque,
            "frontier_index": index,
            "frontier": None if witness is None else witness.rung.name,
            "frontier_bounded_violations": (
                None if witness is None else len(witness.bounded_violations)
            ),
            "frontier_tms2_violations": (
                None if witness is None else len(witness.tms2_violations)
            ),
            "frontier_commits": None if witness is None else witness.commits,
            "rungs_probed": len(self.probes),
        }


def find_frontier(
    strategy: str,
    ladder: Sequence[ScopeRung] = FRONTIER_LADDER,
    stop_at_first: bool = False,
) -> FrontierResult:
    """Walk the ladder and record every probe.  With ``stop_at_first``
    the walk ends at the first separating rung (probe mode); without it
    the full ladder runs (benchmark mode — later rungs going quiet is
    itself information worth committing)."""
    result = FrontierResult(strategy=strategy)
    for rung in ladder:
        probe = probe_scope(strategy, rung)
        result.probes.append(probe)
        if stop_at_first and probe.checked and probe.tms2_violations:
            break
    return result
