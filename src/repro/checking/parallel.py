"""Work-stealing parallel exploration of one model-checking scope.

``repro modelcheck --jobs N`` used to parallelise across *scopes*; this
module parallelises the frontier of a *single* scope: a master process
owns the authoritative visited set — 16-byte BLAKE2b digests of the
payload-level canonical keys (no ids, no salted ``hash()``, so digests
agree across workers) — and a frontier deque; worker processes restore
state snapshots, expand them (including the per-state invariant checks
and the Theorem 5.17 cover check at terminals), and stream back
``(digest, depth)`` successor pairs plus counter deltas — successor
*construction* is skipped entirely in this phase (:class:`_AllSeen`).
The master dedups the digests against the authoritative seen-set and
pulls the snapshots of the genuinely new ones with :func:`_worker_fetch`,
a pure function of the producing batch, so each unique state is built
exactly once fleet-wide however many workers meet its key.  Hand-off is
batched in both directions to amortize IPC, and workers pull new batches
as they finish — an idle worker steals whatever frontier the others have
produced.

Determinism: the master merges worker results in *submission* order, and
the snapshot entering the frontier for a digest is always the one derived
by its first-merged batch (fetches may be *requested* out of order as
expansions finish, but :func:`_worker_fetch` is pure and the master
consumes a deterministic subset of each answer), so the whole run is a
deterministic dataflow — every parallel run, whatever ``jobs`` or worker
timing, visits the identical state set, transition count and rule counts.
Only ``max_depth`` differs from the sequential explorer by construction
(BFS depths vs DFS).  State *counts* may also differ slightly from the
sequential run on scopes with dangling pulls: visited-state keys are
payload-level while successor derivation depends on op-identity linkage
(a pulled entry whose owner unpushed can re-link on re-push), so two
raw states can share a key yet enable different PULLs, and whichever
representative an exploration order reaches first defines the outgoing
edges for that key.  DFS and BFS can pick different representatives.
Verdicts are unaffected: invariants and the cover check hold on *every*
reachable raw state or terminal, of which either visited set is a
key-complete sample, and violation witnesses are payload-level.

Snapshots are payload-level: global rows ``(method, args, ret,
committed)`` plus per-thread entries that reference pushed/pulled ops by
global *index* — restore mints fresh operation ids while preserving the
op-identity links between local and global logs that the machine's rules
rely on.  Restored states are bit-for-bit ``state_key()``-equal to the
originals.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from hashlib import blake2b
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.language import Code
from repro.core.logs import (
    COMMITTED,
    PULLED,
    UNCOMMITTED,
    GlobalEntry,
    GlobalLog,
    LocalEntry,
    LocalLog,
    NotPushed,
    Pushed,
)
from repro.core.machine import Machine, Thread
from repro.core.ops import IdGenerator, Op
from repro.core.packed import decode_node_key
from repro.core.spec import SequentialSpec
from repro.checking.model_checker import (
    ExplorationReport,
    ExploreOptions,
    _check_cover,
    _check_opacity,
    _Node,
    _successors,
)
from repro.checking.reduction import Reducer
from repro.core.invariants import check_all_invariants_cached
from repro.core.rewind import check_cmtpres_all
from repro.obs.tracer import NULL_TRACER

#: frontier states handed to a worker per task (amortizes pickling and
#: process-pool dispatch; small enough to keep the pool load-balanced)
BATCH_SIZE = 48
#: in-flight tasks per worker (double-buffering: a worker finishing a
#: batch finds the next one already queued)
PIPELINE_DEPTH = 2


def key_digest(key: Tuple) -> bytes:
    """16-byte BLAKE2b digest of a packed canonical key.

    Packed keys carry process-local intern ids, so they are decoded back
    to the object-level shape first; the decoded keys repr structurally —
    tuples, ints, strings and Code ASTs whose ``__repr__`` is the literal
    program text — so the digest agrees across processes (unlike
    ``hash()``, which is salted per process, and unlike the raw packed
    bytes, whose codes depend on interning order).  The shared seen-set
    stores these 16-byte digests instead of the full key tuples: an order
    of magnitude less master memory and IPC, at a 2^-128 collision risk —
    far below hardware error rates."""
    return blake2b(repr(decode_node_key(key)).encode(), digest_size=16).digest()


class _AllSeen:
    """The universal seen-set: :func:`_successors` consults ``seen`` to
    decide whether to *construct* a successor; claiming everything is seen
    turns expansion into pure key derivation — no machine construction at
    all.  Workers expand with this guard and ship digests only; the master
    pulls the few snapshots it actually needs via :func:`_worker_fetch`,
    so each unique state is constructed exactly once fleet-wide instead of
    once per worker that happens to meet it."""

    __slots__ = ()

    def __contains__(self, key: Tuple) -> bool:
        return True


_ALL_SEEN = _AllSeen()


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


def snapshot(node: _Node) -> Tuple:
    """A picklable, id-free image of a checker node.

    Operation *identity* is the load-bearing structure: one op object can
    appear in G and in several local logs at once (a pushed entry, other
    threads' pulls), and a pulled entry may reference an op no longer in G
    at all (the owner unpushed it — a "dangling" pull that re-links when
    the owner pushes again).  The snapshot therefore assigns every
    distinct op a slot in one table, and every occurrence — global entry
    or local entry — references its slot; :func:`restore` mints exactly
    one fresh op per slot, rebuilding the same sharing graph.
    """
    machine = node.machine
    slot_of: Dict[int, int] = {}
    table: List[Tuple] = []

    def slot(op: Op) -> int:
        index = slot_of.get(op.op_id)
        if index is None:
            index = slot_of[op.op_id] = len(table)
            table.append((op.method, op.args, op.ret))
        return index

    g_snap = tuple(
        (slot(e.op), e.is_committed) for e in machine.global_log
    )
    threads_snap = []
    for t in machine.threads:
        entries: List[Tuple] = []
        for e in t.local:
            if e.is_not_pushed:
                entries.append((
                    "npshd",
                    slot(e.op),
                    e.flag.saved_code,
                    e.flag.saved_stack,
                ))
            elif e.is_pushed:
                entries.append((
                    "pshd",
                    slot(e.op),
                    e.flag.saved_code,
                    e.flag.saved_stack,
                ))
            else:
                entries.append(("pld", slot(e.op)))
        threads_snap.append((t.tid, t.code, t.stack, tuple(entries)))
    committed_ops_snap = tuple(
        tuple(slot(op) for op in ops) for ops in node.committed_ops
    )
    return (
        tuple(table),
        g_snap,
        tuple(threads_snap),
        node.committed,
        committed_ops_snap,
    )


def restore(
    snap: Tuple,
    spec: SequentialSpec,
    ids: IdGenerator,
    originals: Dict[int, Tuple[Code, object]],
    check_gray_criteria: bool = True,
) -> _Node:
    """Rebuild a live checker node from :func:`snapshot` output.

    Fresh ids are minted per op-table slot; all canonical keys are
    payload-level so the result is ``state_key()``-identical to the
    snapshotted state.  ``originals`` maps tid → ``(original_code,
    original_stack)`` (constant per scope, so it ships once per worker,
    not once per snapshot).
    """
    table, g_snap, threads_snap, committed, committed_ops_snap = snap
    ops = [Op(method, args, ret, ids.fresh()) for method, args, ret in table]
    global_log = GlobalLog(
        GlobalEntry(ops[index], COMMITTED if is_committed else UNCOMMITTED)
        for index, is_committed in g_snap
    )
    threads = []
    for tid, code, stack, entries_snap in threads_snap:
        entries: List[LocalEntry] = []
        for entry in entries_snap:
            kind = entry[0]
            if kind == "npshd":
                _, index, saved_code, saved_stack = entry
                entries.append(
                    LocalEntry(ops[index], NotPushed(saved_code, saved_stack))
                )
            elif kind == "pshd":
                _, index, saved_code, saved_stack = entry
                entries.append(
                    LocalEntry(ops[index], Pushed(saved_code, saved_stack))
                )
            else:
                entries.append(LocalEntry(ops[entry[1]], PULLED))
        original_code, original_stack = originals[tid]
        threads.append(
            Thread(
                tid,
                code,
                stack,
                LocalLog(entries),
                original_code=original_code,
                original_stack=original_stack,
            )
        )
    machine = Machine(
        spec,
        threads,
        global_log,
        ids=ids,
        check_gray_criteria=check_gray_criteria,
    )
    committed_ops = tuple(
        tuple(ops[index] for index in indices)
        for indices in committed_ops_snap
    )
    return _Node(machine, committed, committed_ops)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_WORKER: Dict[str, object] = {}


def _worker_init(spec: SequentialSpec, programs: Tuple[Code, ...], opts: Dict) -> None:
    """Per-process context: spec (one instance, so the shared mover and
    denotation caches accumulate across batches), the scope's original
    programs, the reduction layer, and worker-local caches."""
    options = ExploreOptions(**opts)
    machine = Machine(spec, check_gray_criteria=options.check_gray_criteria)
    tids = []
    for program in programs:
        machine, tid = machine.spawn(program)
        tids.append(tid)
    originals = {
        t.tid: (t.original_code, t.original_stack) for t in machine.threads
    }
    reducer = None
    if options.por:
        reducer = Reducer(
            spec,
            programs=tuple(zip(tids, programs)),
            symmetry=options.por_symmetry,
            movers=machine.movers,
        )
    _WORKER.update(
        spec=spec,
        options=options,
        originals=originals,
        program_of={tid: prog for tid, prog in zip(tids, programs)},
        reducer=reducer,
        invariant_cache={},
        cover_cache={},
    )


def _worker_expand(batch: List[Tuple[Tuple, int]]) -> Dict:
    """Expand a batch of ``(snapshot, depth)`` frontier items.

    Runs the same per-state work as the sequential loop — invariant /
    cmtpres checks, successor derivation (through the reduction layer),
    terminal classification and the cover check — and returns counter
    deltas plus one ``(digest, depth)`` pair per batch-unique successor.
    No successor is *constructed* here (see :class:`_AllSeen`): the master
    dedups the digests against its authoritative seen-set and pulls the
    snapshots of the genuinely new ones with :func:`_worker_fetch`.
    """
    t_start = perf_counter()
    spec = _WORKER["spec"]
    options: ExploreOptions = _WORKER["options"]
    reducer: Optional[Reducer] = _WORKER["reducer"]
    result = {
        "states": 0,
        "transitions": 0,
        "finals": 0,
        "stuck": 0,
        "max_depth": 0,
        "rule_counts": {},
        "invariant_violations": [],
        "cover_violations": [],
        "cmtpres_violations": [],
        "opacity_violations": [],
        "opacity_divergences": [],
        "opacity_terminals": 0,
        "successors": [],
        "dedup": 0,
    }
    report_proxy = ExplorationReport()
    rule_counts: Dict[str, int] = result["rule_counts"]
    batch_local: Set[bytes] = set()
    for snap, depth in batch:
        # A generator per restore: ids need only be unique within one
        # machine lineage (keys are payload-level), and a shared generator
        # would accumulate every issued id for the whole run.
        node = restore(
            snap,
            spec,
            IdGenerator(start=1_000_000),
            _WORKER["originals"],
            options.check_gray_criteria,
        )
        result["states"] += 1
        if depth > result["max_depth"]:
            result["max_depth"] = depth
        if options.check_invariants:
            violations = check_all_invariants_cached(
                node.machine, _WORKER["invariant_cache"]
            )
            if violations:
                result["invariant_violations"].extend(violations)
        if options.check_cmtpres:
            result["cmtpres_violations"].extend(
                check_cmtpres_all(node.machine, fuel=options.bigstep_fuel)
            )
        successors = _successors(node, options, _ALL_SEEN, reducer)
        result["transitions"] += len(successors)
        if not successors:
            if node.machine.threads:
                result["stuck"] += 1
            else:
                result["finals"] += 1
            if options.check_atomic_cover:
                _check_cover(
                    spec,
                    node,
                    _WORKER["program_of"],
                    _WORKER["cover_cache"],
                    options,
                    report_proxy,
                )
            if options.opacity_checker is not None:
                _check_opacity(spec, node, options, report_proxy)
        elif options.check_atomic_cover and options.check_every_state_cover:
            _check_cover(
                spec,
                node,
                _WORKER["program_of"],
                _WORKER["cover_cache"],
                options,
                report_proxy,
            )
        next_depth = depth + 1
        for rule, key, _successor in successors:
            rule_counts[rule] = rule_counts.get(rule, 0) + 1
            d = key_digest(key)
            if d in batch_local:
                result["dedup"] += 1
                continue
            batch_local.add(d)
            result["successors"].append((d, next_depth))
    result["cover_violations"].extend(report_proxy.cover_violations)
    result["opacity_violations"].extend(report_proxy.opacity_violations)
    result["opacity_divergences"].extend(report_proxy.opacity_divergences)
    result["opacity_terminals"] += report_proxy.opacity_terminals
    if reducer is not None:
        result["ample_hits"] = reducer.ample_hits
        result["ample_deferred"] = reducer.ample_deferred
        result["full_expansions"] = reducer.full_expansions
        # Deltas, not totals: reset so the next batch reports only its own.
        reducer.ample_hits = 0
        reducer.ample_deferred = 0
        reducer.full_expansions = 0
    result["busy"] = perf_counter() - t_start
    return result


def _worker_fetch(
    batch: List[Tuple[Tuple, int]], wanted: Tuple[bytes, ...]
) -> Dict[bytes, Tuple[Tuple, int]]:
    """Materialize successor snapshots: re-expand ``batch`` and return
    ``digest → (snapshot, depth)`` for its first (in batch order)
    successor matching each ``wanted`` digest.

    This is the *only* place successors are constructed — and only the
    ones the master actually lacks.  A pure function of its arguments:
    any worker produces the identical answer, and each digest's snapshot
    is independent of what else ``wanted`` contains (snapshots are
    id-free, so re-minted operation ids leave no residue).  Counters are
    not touched: :func:`_worker_expand` already counted this batch once.
    """
    spec = _WORKER["spec"]
    options: ExploreOptions = _WORKER["options"]
    reducer: Optional[Reducer] = _WORKER["reducer"]
    remaining = set(wanted)
    found: Dict[bytes, Tuple[Tuple, int]] = {}
    if reducer is not None:
        saved = (
            reducer.ample_hits,
            reducer.ample_deferred,
            reducer.full_expansions,
        )

    class _AllButWanted:
        # "Seen" from _successors' point of view: construct only the
        # successors whose digests we still need.
        def __contains__(self, key: Tuple) -> bool:
            return key_digest(key) not in remaining

    guard = _AllButWanted()
    for snap, depth in batch:
        if not remaining:
            break
        node = restore(
            snap,
            spec,
            IdGenerator(start=1_000_000),
            _WORKER["originals"],
            options.check_gray_criteria,
        )
        for _rule, key, successor in _successors(node, options, guard, reducer):
            if successor is None:
                continue
            d = key_digest(key)
            if d in remaining:
                remaining.discard(d)
                found[d] = (snapshot(successor), depth + 1)
                if not remaining:
                    break
    if reducer is not None:
        (
            reducer.ample_hits,
            reducer.ample_deferred,
            reducer.full_expansions,
        ) = saved
    return found


# ---------------------------------------------------------------------------
# Master side
# ---------------------------------------------------------------------------


def explore_parallel(
    spec: SequentialSpec,
    programs: Sequence[Code],
    options: Optional[ExploreOptions] = None,
    jobs: int = 2,
) -> ExplorationReport:
    """:func:`repro.checking.model_checker.explore`, fanned out over
    ``jobs`` worker processes sharing one scope's frontier.

    Deterministic: any two parallel runs — **any** ``jobs`` ≥ 1 — report
    the same states, transitions, rule counts, terminal counts and
    violation sets.  ``jobs=1`` runs the same batched dataflow through a
    single worker rather than delegating to the sequential DFS, so
    logical-step attribution (rule counts, state totals) is *identical*
    across ``--jobs`` values — the profiler-determinism contract.  (The
    sequential :func:`explore` can visit different representatives of
    the same quotient; its verdicts agree, its counts need not — see the
    module docstring.)  Tracing is disabled in workers (tracers are
    process-local event sinks), matching the behaviour of the old
    scope-parallel mode.
    """
    jobs = max(1, jobs)
    options = options or ExploreOptions()
    if options.max_pulled_per_thread is None:
        from repro.core.language import methods_of

        total_methods = sum(len(methods_of(p)) for p in programs)
        options = ExploreOptions(**{
            **options.__dict__,
            "max_pulled_per_thread": total_methods,
        })
    opts = {
        k: v
        for k, v in options.__dict__.items()
        if k not in ("tracer",)
    }
    tracer = options.tracer

    # Master-side context: the initial node and the canonicalizer.  The
    # master never expands states; it only keys them.
    machine = Machine(spec, check_gray_criteria=options.check_gray_criteria)
    tids = []
    for program in programs:
        machine, tid = machine.spawn(program)
        tids.append(tid)
    reducer = None
    if options.por:
        reducer = Reducer(
            spec,
            programs=tuple(zip(tids, programs)),
            symmetry=options.por_symmetry,
            movers=machine.movers,
        )
    initial = _Node(machine, ())
    initial_key = (
        reducer.canonical(initial.key()) if reducer else initial.key()
    )

    report = ExplorationReport()
    report.por = bool(reducer)
    seen: Set[bytes] = {key_digest(initial_key)}
    frontier: deque = deque([(snapshot(initial), 0)])
    rule_counts = report.rule_counts
    states = 0
    max_in_flight = jobs * PIPELINE_DEPTH
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_worker_init,
        initargs=(spec, tuple(programs), opts),
    ) as pool:
        # Results are merged in SUBMISSION order, not completion order.
        # Batch composition, the seen-set's arbitration between duplicate
        # digests, and the frontier order then depend only on the
        # initial state — never on worker timing — so every run (any
        # ``jobs`` ≥ 2) explores the identical reduced graph.  Workers
        # still run concurrently: up to ``max_in_flight`` batches are
        # dispatched before the master blocks on the oldest.
        #
        # Pending entries are ``[expand_future, batch, fetch]`` where
        # ``fetch`` graduates from the ``_UNSET`` sentinel to either a
        # :func:`_worker_fetch` future or a plain dict when the batch
        # produced nothing the master lacked.
        _UNSET = object()
        pending: deque = deque()

        def prefetch() -> None:
            # Pre-submit snapshot fetches for expansions that finished
            # while the master was merging older ones.  Requesting out of
            # merge order is sound: the wanted set — prefiltered by the
            # *current* seen-set — is a superset of what the in-order
            # merge will consume (seen only grows), and _worker_fetch is
            # pure, each digest's snapshot independent of its companions.
            for entry in pending:
                if entry[2] is _UNSET and entry[0].done():
                    wanted = tuple(
                        d
                        for d, _depth in entry[0].result()["successors"]
                        if d not in seen
                    )
                    entry[2] = (
                        pool.submit(_worker_fetch, entry[1], wanted)
                        if wanted
                        else {}
                    )

        while frontier or pending:
            while frontier and len(pending) < max_in_flight:
                batch = [
                    frontier.popleft()
                    for _ in range(min(len(frontier), BATCH_SIZE))
                ]
                pending.append(
                    [pool.submit(_worker_expand, batch), batch, _UNSET]
                )
            prefetch()
            future, batch, fetch = pending.popleft()
            result = future.result()
            if fetch is _UNSET:
                wanted = tuple(
                    d for d, _depth in result["successors"] if d not in seen
                )
                fetch = (
                    pool.submit(_worker_fetch, batch, wanted)
                    if wanted
                    else {}
                )
            states += result["states"]
            if states > options.max_states:
                for queued in pending:
                    queued[0].cancel()
                    if queued[2] is not _UNSET and not isinstance(
                        queued[2], dict
                    ):
                        queued[2].cancel()
                report.states = states
                raise MemoryError(
                    f"model checker exceeded {options.max_states} states"
                )
            report.transitions += result["transitions"]
            report.final_states += result["finals"]
            report.stuck_states += result["stuck"]
            report.dedup_hits += result["dedup"]
            report.ample_hits += result.get("ample_hits", 0)
            report.ample_deferred += result.get("ample_deferred", 0)
            report.full_expansions += result.get("full_expansions", 0)
            report.worker_busy += result.get("busy", 0.0)
            if result["max_depth"] > report.max_depth:
                report.max_depth = result["max_depth"]
            for rule, count in result["rule_counts"].items():
                rule_counts[rule] = rule_counts.get(rule, 0) + count
            report.invariant_violations.extend(
                result["invariant_violations"]
            )
            report.cover_violations.extend(result["cover_violations"])
            report.cmtpres_violations.extend(
                result["cmtpres_violations"]
            )
            report.opacity_violations.extend(
                result.get("opacity_violations", ())
            )
            report.opacity_divergences.extend(
                result.get("opacity_divergences", ())
            )
            report.opacity_terminals += result.get("opacity_terminals", 0)
            fetched: Dict[bytes, Tuple[Tuple, int]] = (
                fetch if isinstance(fetch, dict) else fetch.result()
            )
            for d, _depth in result["successors"]:
                if d in seen:
                    report.dedup_hits += 1
                    continue
                seen.add(d)
                frontier.append(fetched[d])
            if len(frontier) > report.peak_frontier:
                report.peak_frontier = len(frontier)
    report.states = states
    if tracer.enabled:
        tracer.instant(
            "mc.parallel_done",
            "mc",
            args={
                "states": report.states,
                "transitions": report.transitions,
                "jobs": jobs,
            },
        )
    if not report.ok:
        from repro.obs.flight import maybe_dump

        report.flight_dump = maybe_dump(
            tracer,
            label=f"modelcheck-parallel-{type(spec).__name__}",
            reason="violation",
            meta={"states": report.states, "jobs": jobs},
        )
    return report
