"""Graphviz/DOT export for machine states and conflict graphs.

The paper communicates its model with the Figure 1 picture (shared log in
the middle, per-thread local logs around it).  :func:`machine_to_dot`
renders the same picture for a concrete state; :func:`conflict_graph_to_dot`
renders the Papadimitriou precedence graph with its edge reasons.  Both
emit plain DOT text — no graphviz dependency; render with ``dot -Tsvg``
wherever available, or read the text (it is deliberately human-legible).
"""

from __future__ import annotations

from typing import List

from repro.core.conflictgraph import ConflictGraph
from repro.core.machine import Machine


def _escape(text: str) -> str:
    return text.replace('"', '\\"').replace("\n", "\\n")


def machine_to_dot(machine: Machine, title: str = "push/pull state") -> str:
    """The Figure 1 picture for a concrete machine state."""
    lines: List[str] = [
        "digraph pushpull {",
        "  rankdir=LR;",
        f'  label="{_escape(title)}"; labelloc=t;',
        "  node [shape=record, fontsize=10];",
    ]
    global_rows = []
    for index, entry in enumerate(machine.global_log):
        flag = "gCmt" if entry.is_committed else "gUCmt"
        global_rows.append(f"<g{index}> {_escape(entry.op.pretty())} [{flag}]")
    body = "|".join(global_rows) if global_rows else "(empty)"
    lines.append(f'  global [label="{{shared log|{body}}}", style=filled, '
                 'fillcolor=lightyellow];')
    for thread in machine.threads:
        rows = []
        for index, entry in enumerate(thread.local):
            kind = (
                "pld" if entry.is_pulled else
                "pshd" if entry.is_pushed else "npshd"
            )
            rows.append(f"<l{index}> {_escape(entry.op.pretty())} [{kind}]")
        body = "|".join(rows) if rows else "(empty)"
        lines.append(
            f'  t{thread.tid} [label="{{thread {thread.tid}|'
            f"code: {_escape(repr(thread.code)[:40])}|{body}}}\"];"
        )
        # pushed/pulled entries link to their global-log slot
        for index, entry in enumerate(thread.local):
            g_entry = machine.global_log.entry_for(entry.op)
            if g_entry is None:
                continue
            g_index = machine.global_log.index_of(entry.op)
            if entry.is_pushed:
                lines.append(
                    f"  t{thread.tid}:l{index} -> global:g{g_index} "
                    '[color=blue, label="push"];'
                )
            elif entry.is_pulled:
                lines.append(
                    f"  global:g{g_index} -> t{thread.tid}:l{index} "
                    '[color=darkgreen, label="pull"];'
                )
    lines.append("}")
    return "\n".join(lines)


def conflict_graph_to_dot(graph: ConflictGraph, title: str = "precedence") -> str:
    """The transaction precedence (conflict) graph with edge reasons."""
    lines = [
        "digraph conflicts {",
        f'  label="{_escape(title)}"; labelloc=t;',
        "  node [shape=circle, fontsize=10];",
    ]
    for node in sorted(graph.nodes):
        lines.append(f'  tx{node} [label="T{node}"];')
    for (src, dst), (op1, op2) in sorted(
        graph.edge_reasons.items(), key=lambda kv: kv[0]
    ):
        reason = _escape(f"{op1.method}→{op2.method}")
        lines.append(f'  tx{src} -> tx{dst} [label="{reason}", fontsize=8];')
    lines.append("}")
    return "\n".join(lines)
