"""Small-scope model checking of the PUSH/PULL machine.

:mod:`.model_checker` exhaustively enumerates every interleaving of every
enabled rule instance for small thread programs, checking on each reached
state whichever properties are requested: the §5.3 invariants, the
commit-preservation invariant of §5.4, and — on final states — the
simulation with the atomic machine (Theorem 5.17) and the opacity
conditions of §6.1.  This is the strongest empirical evidence a
reproduction of a proof can offer: the theorem holds on the full reachable
state space of every scope we can enumerate.
"""

from repro.checking.model_checker import (
    ExplorationReport,
    ExploreOptions,
    explore,
    check_serializability_small_scope,
    verdict_fingerprint,
)
from repro.checking.parallel import explore_parallel
from repro.checking.reduction import Reducer

__all__ = [
    "ExplorationReport",
    "ExploreOptions",
    "explore",
    "explore_parallel",
    "check_serializability_small_scope",
    "verdict_fingerprint",
    "Reducer",
]
