"""Mover-guided partial-order reduction for the model checker.

The paper's central oracle family — Lipton left/right movers over the log
precongruence ``≼`` (§4) — is exactly the independence relation a sound
partial-order reduction needs.  This module turns the memoized mover
oracles into a *state-space quotient* plus an *ample-set successor
filter*, both consumed by :func:`repro.checking.model_checker.explore`:

1. **Trace quotient** (:meth:`Reducer.canonical`).  Visited-state keys
   are mapped to the lexicographically least representative of their
   Mazurkiewicz trace class: the global log's rows are rewritten by
   :func:`repro.core.precongruence.trace_normal_form` under payload-level
   both-mover independence, and each thread's maximal runs of pulled
   (``pld``) entries are normalized the same way (own ``npshd``/``pshd``
   entries are fixed barriers — their order is the program/push order the
   §5.3 invariants constrain).  Both-mover adjacent swaps produce
   mutually-``≼`` logs in every context, every order-sensitive invariant
   clause and rule criterion is mover-guarded, and the Theorem 5.17 cover
   check reads only the committed payload *multiset* — so two states that
   differ by such swaps are verdict-equivalent and exploring one
   representative per class is sound (see DESIGN.md "Reduction").

2. **Thread-permutation symmetry.**  For scopes whose threads run
   identical programs, the key is additionally minimized over the
   permutations of each identical-program group (tids renamed in thread
   digests, the owner row, and the commit order).  The machine is fully
   symmetric in thread identity, so permuted states are bisimilar.

3. **Ample sets** (:meth:`Reducer.ample_tid`).  A thread whose enabled
   instances are *all* APP/UNAPP — with at least one APP — touches
   nothing any other thread can observe (APP/UNAPP read and write only
   the thread's own ``(c, σ, L)``; see ``Machine.RULE_FOOTPRINT``), so
   the checker may expand only that thread's moves and defer the rest.
   Requiring an enabled APP gives deterministic progress: every maximal
   ample chain strictly consumes program text and ends in a fully
   expanded state, which rules out the ignoring problem without a
   seen-set proviso — the ample decision is a pure function of the state,
   so sequential and work-stealing parallel runs explore the *same*
   reduced graph.  The filter is applied only when backward rules are
   explored (``include_backward``): UNAPP chains from the fully expanded
   chain ends re-reach the deferred mid-chain configurations, preserving
   the per-thread invariant-witness coverage of the full graph.

Everything here is payload-level and deterministic; no operation ids,
``id()`` values, or hashes enter the canonical keys, so keys agree across
processes (the parallel explorer's shared seen-set relies on this).
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.language import Code
from repro.core.machine import Machine
from repro.core.ops import Op
from repro.core.packed import (
    decode_global_rows,
    decode_thread_key,
    encode_node_key,
    unpack_owners,
)
from repro.core.precongruence import trace_normal_form
from repro.core.spec import MemoizedMovers, SequentialSpec, shared_movers
from repro.obs.tracer import CAT_POR, NULL_TRACER, Tracer


def _symmetry_perms(programs: Sequence[Tuple[int, Code]]) -> List[Dict[int, int]]:
    """Non-identity tid permutations respecting program identity.

    ``programs`` pairs each spawned tid with its *original* program; tids
    are interchangeable only within groups running syntactically equal
    programs.  Returns the non-trivial permutations as tid→tid maps (the
    identity is implicit — the caller always keeps the unpermuted
    candidate), or ``[]`` when every group is a singleton.
    """
    groups: Dict[str, List[int]] = {}
    for tid, program in programs:
        groups.setdefault(repr(program), []).append(tid)
    swappable = [sorted(tids) for tids in groups.values() if len(tids) > 1]
    if not swappable:
        return []
    perms: List[Dict[int, int]] = [{}]
    for tids in swappable:
        extended: List[Dict[int, int]] = []
        for image in permutations(tids):
            mapping = dict(zip(tids, image))
            for base in perms:
                extended.append({**base, **mapping})
        perms = extended
    return [p for p in perms if any(k != v for k, v in p.items())]


class Reducer:
    """Canonicalization and ample-set decisions for one exploration.

    Stateful only in its caches and counters; :meth:`canonical` and
    :meth:`ample_tid` are pure functions of their arguments, which is what
    makes the reduction reproducible across runs and across the parallel
    explorer's workers.
    """

    def __init__(
        self,
        spec: SequentialSpec,
        programs: Sequence[Tuple[int, Code]] = (),
        symmetry: bool = True,
        ample: bool = True,
        tracer: Tracer = NULL_TRACER,
        movers: Optional[MemoizedMovers] = None,
    ) -> None:
        self.spec = spec
        self.movers = movers or shared_movers(spec)
        self.ample = ample
        self.perms = _symmetry_perms(programs) if symmetry else []
        self.tracer = tracer
        # Payload-level commutation of two id-free rows; symmetric, so both
        # orientations are stored per query.
        self._commute: Dict[Tuple, bool] = {}
        # (rows, owner_row) → canonical (rows, owner_row).  G changes on a
        # minority of transitions, so this cache carries most states.
        self._g_cache: Dict[Tuple, Tuple] = {}
        # flag_rows → flag_rows with pld runs normalized.
        self._l_cache: Dict[Tuple, Tuple] = {}
        # Packed node key → packed canonical key.  The checker calls
        # :meth:`canonical` once per emitted transition and most states are
        # revisited, so this front cache keeps the decode→normalize→encode
        # round-trip off the hot path (bytes keys hash once — CPython
        # caches ``bytes.__hash__``).
        self._canon_cache: Dict[Tuple, Tuple] = {}
        # Counters folded into the report / `por.*` trace stream.
        self.ample_hits = 0
        self.ample_deferred = 0
        self.full_expansions = 0
        self.g_cache_misses = 0
        self.canon_decodes = 0

    # ------------------------------------------------------------- movers

    def _rows_commute(self, row1: Tuple, row2: Tuple) -> bool:
        """Both-mover check on id-free payload rows ``(method, args, ret)``.

        Probe records carry sentinel ids (never stored); the underlying
        memo is keyed on payload classes, so repeats are dictionary hits.
        """
        key = (row1, row2)
        got = self._commute.get(key)
        if got is None:
            op1 = Op(row1[0], row1[1], row1[2], -1)
            op2 = Op(row2[0], row2[1], row2[2], -2)
            got = self.movers.commutes(op1, op2)
            self._commute[key] = got
            self._commute[(row2, row1)] = got
        return got

    # ----------------------------------------------------- canonical keys

    def _canon_global(self, rows: Tuple, owner_row: Tuple) -> Tuple:
        """Trace normal form of G's ``(payload_row, owner)`` sequence."""
        key = (rows, owner_row)
        got = self._g_cache.get(key)
        if got is not None:
            return got
        self.g_cache_misses += 1
        items = trace_normal_form(
            tuple(zip(rows, owner_row)),
            lambda a, b: self._rows_commute(a[0][:3], b[0][:3]),
            repr,
        )
        if items:
            crows, cowners = zip(*items)
            got = (tuple(crows), tuple(cowners))
        else:
            got = ((), ())
        self._g_cache[key] = got
        return got

    def _local_rows_commute(self, row1: Tuple, row2: Tuple) -> bool:
        """Independence of two local-log rows ``(method, args, ret, kind)``.

        Own entries (``npshd``/``pshd``) never commute with each other,
        whatever their payloads: their relative order is *data* — the
        program order I_localOrder checks and the push order I_chronPush
        checks — not an artifact of interleaving, so rewriting it could
        manufacture or mask violations.  Every other pair (pld/pld and
        pld/own) reorders freely when the payloads are both-movers: the
        swapped logs are mutually ``≼`` in every context, and every
        order-sensitive clause or criterion cites a non-commuting pair,
        whose relative order the trace normal form preserves."""
        if row1[3] != "pld" and row2[3] != "pld":
            return False
        return self._rows_commute(row1[:3], row2[:3])

    def _canon_local(self, flag_rows: Tuple) -> Tuple:
        """The trace normal form of a thread's local-log rows under
        :meth:`_local_rows_commute` — pulled entries slide into canonical
        position among themselves and past commuting own entries, so the
        PULL-permutation blowup collapses to one representative per
        thread-local trace class."""
        got = self._l_cache.get(flag_rows)
        if got is not None:
            return got
        got = trace_normal_form(flag_rows, self._local_rows_commute, repr)
        self._l_cache[flag_rows] = got
        return got

    def canonical(self, nkey: Tuple) -> Tuple:
        """The canonical key of a packed checker node key
        ``(state_key, committed)``.

        Applies, in order: per-thread pld-run normalization, global-log
        trace normalization, and (when the scope has interchangeable
        threads) minimization over program-preserving tid permutations.
        The normalization itself runs on the *decoded* object-level rows
        (intern ids are process-local and carry no payload order, so the
        packed codes can't be ranked directly); the result is re-encoded
        to a packed key.  Decode → normalize → encode is pure and
        payload-level — canonical keys of equal states agree across
        processes once digested through
        :func:`repro.checking.parallel.key_digest` (which decodes again).
        """
        got = self._canon_cache.get(nkey)
        if got is not None:
            return got
        self.canon_decodes += 1
        (ptkeys, gpacked, opacked), committed = nkey
        tkeys = tuple(decode_thread_key(tb) for tb in ptkeys)
        rows = decode_global_rows(gpacked)
        owner_row = tuple(unpack_owners(opacked))
        tkeys = tuple(
            (tid, code, stack, self._canon_local(frows))
            for tid, code, stack, frows in tkeys
        )
        rows, owner_row = self._canon_global(rows, owner_row)
        # Commit *order* is bookkeeping only — every consumer (the
        # Theorem 5.17 cover check, the CLI reports) reads the committed
        # *set* — so CMT-order interleavings collapse to one key.
        committed = tuple(sorted(committed))
        best = ((tkeys, rows, owner_row), committed)
        if self.perms:
            # Tids occur inside heterogeneous tuples, so candidates are
            # ranked by their (deterministic) repr rather than compared
            # structurally.
            best_rank = repr(best)
            for perm in self.perms:
                permuted_tkeys = tuple(
                    sorted(
                        ((perm.get(tk[0], tk[0]),) + tk[1:] for tk in tkeys),
                        key=lambda t: t[0],
                    )
                )
                powners = tuple(
                    perm.get(o, o) if o >= 0 else o for o in owner_row
                )
                prows, powners = self._canon_global(rows, powners)
                pcommitted = tuple(sorted(perm.get(t, t) for t in committed))
                cand = ((permuted_tkeys, prows, powners), pcommitted)
                rank = repr(cand)
                if rank < best_rank:
                    best, best_rank = cand, rank
        got = encode_node_key(best)
        self._canon_cache[nkey] = got
        return got

    # -------------------------------------------------------- ample sets

    def ample_tid(
        self,
        machine: Machine,
        pull_allowed: bool,
        pull_committed_only: bool,
        pull_budget: Optional[int],
    ) -> Optional[int]:
        """The tid whose moves form an ample set at this state, or ``None``
        for full expansion.

        Eligibility: the thread is unfinished, has at least one enabled
        APP instance (strict progress — ample chains terminate), and has
        *no* enabled global move (PUSH/PULL/CMT/UNPUSH/UNPULL, per the
        checker's PULL policy).  The lowest eligible tid wins, making the
        choice a pure function of the state.
        """
        for thread in machine.threads:
            if thread.done:
                continue
            tid = thread.tid
            if not machine.app_enabled(tid):
                continue
            if machine.nonlocal_move_enabled(
                tid,
                pull_allowed=pull_allowed,
                pull_committed_only=pull_committed_only,
                pull_budget=pull_budget,
            ):
                continue
            self.ample_hits += 1
            self.ample_deferred += sum(
                1 for other in machine.threads if other.tid != tid
            )
            return tid
        self.full_expansions += 1
        return None

    # ------------------------------------------------------ observability

    def emit_stats(self, tracer: Optional[Tracer] = None) -> Dict[str, int]:
        """The ``por.*`` counter snapshot; also emitted on ``tracer`` as a
        single ``por.stats`` counter event when tracing is enabled."""
        stats = {
            "por.ample_hits": self.ample_hits,
            "por.ample_deferred": self.ample_deferred,
            "por.full_expansions": self.full_expansions,
            "por.g_cache_misses": self.g_cache_misses,
            "por.g_cache_size": len(self._g_cache),
            "por.l_cache_size": len(self._l_cache),
            "por.canon_decodes": self.canon_decodes,
            "por.canon_cache_size": len(self._canon_cache),
            "por.symmetry_perms": len(self.perms),
        }
        tracer = tracer or self.tracer
        if tracer.enabled:
            tracer.counter(
                "por.stats", CAT_POR, {k: float(v) for k, v in stats.items()}
            )
        return stats
