"""Packed-kernel identity harness: the packed fast path vs the object model.

The packed kernel (``repro.core.packed``) re-represents state keys as
interned integer columns and derives successor keys by byte patching;
its correctness contract is *representation identity*: at every reachable
state, decoding the packed key must yield exactly the object-level key
the PR-2 kernel would have computed from the live machine
(:func:`repro.core.packed.reference_state_key`).

This module walks machines through their actual rule expansion — the same
batched key-first path the model checker uses — and checks that contract
at every visited state.  It backs both the ``repro perf`` packed tier and
the property tests in ``tests/test_packed_kernel.py``.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.checking.model_checker import ExploreOptions, _Node, _successors
from repro.core.language import Code, methods_of
from repro.core.machine import Machine
from repro.core.packed import decode_state_key, reference_state_key
from repro.core.spec import SequentialSpec


def initial_node(spec: SequentialSpec, programs: Sequence[Code]) -> _Node:
    """The exploration's start state: one spawned thread per program."""
    machine = Machine(spec)
    for program in programs:
        machine, _ = machine.spawn(program)
    return _Node(machine, ())


def identity_mismatch(machine: Machine) -> Optional[str]:
    """``None`` when the machine's packed key decodes to exactly the
    object-level reference key, else a description of the divergence."""
    packed = decode_state_key(machine.state_key())
    reference = reference_state_key(machine)
    if packed == reference:
        return None
    return f"packed={packed!r} != reference={reference!r}"


def walk_identity(
    spec: SequentialSpec,
    programs: Sequence[Code],
    steps: int,
    seed: int,
    options: Optional[ExploreOptions] = None,
) -> Dict[str, object]:
    """One seeded random walk of ``steps`` rule applications, checking
    representation identity at every state (including the initial one).

    Successors come from the checker's own key-first expansion with an
    empty ``seen`` set, so every probe runs the packed derivation *and*
    constructs the successor machine — exactly the pairing the identity
    contract is about.  Returns a stats dict; ``mismatches`` must be
    empty for a healthy kernel.
    """
    if options is None:
        options = ExploreOptions(
            max_pulled_per_thread=sum(len(methods_of(p)) for p in programs)
        )
    rng = random.Random(seed)
    node = initial_node(spec, programs)
    mismatches = []
    rule_counts: Dict[str, int] = {}
    checked = 1
    first = identity_mismatch(node.machine)
    if first is not None:
        mismatches.append(f"initial state: {first}")
    for step in range(steps):
        moves = [
            (rule, successor)
            for rule, _, successor in _successors(node, options, seen=set())
            if successor is not None
        ]
        if not moves:
            break
        rule, node = moves[rng.randrange(len(moves))]
        rule_counts[rule] = rule_counts.get(rule, 0) + 1
        checked += 1
        found = identity_mismatch(node.machine)
        if found is not None:
            mismatches.append(f"step {step} ({rule}): {found}")
            break
    return {
        "checked_states": checked,
        "rule_counts": dict(sorted(rule_counts.items())),
        "mismatches": mismatches,
    }


def sweep_identity(
    scopes: Dict[str, Tuple[type, Sequence[Code]]],
    steps: int = 60,
    walks: int = 3,
    seed: int = 0,
) -> Dict[str, Dict[str, object]]:
    """:func:`walk_identity` over every scope, several seeds each."""
    results: Dict[str, Dict[str, object]] = {}
    for name, (spec_cls, programs) in scopes.items():
        checked = 0
        mismatches = []
        for walk in range(walks):
            stats = walk_identity(
                spec_cls(), programs, steps, seed=seed + walk
            )
            checked += stats["checked_states"]  # type: ignore[operator]
            mismatches.extend(stats["mismatches"])  # type: ignore[arg-type]
        results[name] = {
            "checked_states": checked,
            "mismatches": mismatches,
        }
    return results
