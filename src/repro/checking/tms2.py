"""Opacity decided by linearizability against a TMS2-style automaton.

The bounded checker (:func:`repro.core.opacity.check_history_opaque`)
quantifies, *per viewer*, over serial executions of arbitrary subsets of
the committed transactions — no shared witness order, no real-time
constraints, and a viewer's pulled-uncommitted operations ride along in
its view where they can self-justify a dirty read.  That is sound enough
to catch gross inconsistencies on model-checker scopes but it is not a
decision procedure: it can accept histories no serialization justifies.

This module implements the reduction of Armstrong, Dongol & Doherty
(arXiv:1610.01004, PAPERS.md): a history is opaque iff it linearizes
against a TMS2-style specification automaton.  Concretely
(final-state opacity, Guerraoui & Kapalka):

* the automaton's state is the *memory sequence* — here generalized from
  read/write registers to an arbitrary prefix-closed
  :class:`~repro.core.spec.SequentialSpec` by keeping the latest memory
  as the serial log of committed operations so far (every earlier memory
  is one of its prefixes);
* a committing transaction appends its own operations to the memory,
  legal iff ``spec.allowed(memory + own)``;
* an aborted or still-active transaction must *validate* at some memory
  version — ``spec.allowed(memory + own)`` at its linearization point —
  without changing the memory;
* one **shared witness order** serves every transaction simultaneously,
  and it must be a linear extension of the history's real-time interval
  order (``a`` ended before ``b`` began ⇒ ``a`` before ``b``) over *all*
  records, committed and aborted alike.

Transaction-granular placement is equivalent to event-granular
linearizability here: ``allowed`` is prefix-closed, so the final own
operation's check at one memory version subsumes the checks of every
prefix of the transaction's own sequence at that same version, and
TMS2's freedom to pick any memory index ``n ≥ beginIdx`` is exactly the
placement freedom of the linearization point.

The search is a DFS over linear extensions of the committed records'
real-time order, pruned by prefix-closedness (a serial prefix that is
not ``allowed`` cannot be repaired by any extension).  Aborted/active
viewers never change the memory and never constrain *each other's*
feasible memory versions beyond monotonicity, so for each complete
committed order they are placed by a greedy monotone assignment (their
mutual real-time order is an interval order whose feasibility windows
nest; smallest-feasible-point-first is optimal), which keeps the
procedure polynomial in the number of aborted attempts and factorial
only in the (bounded) number of commits.

A viewer's *own* operations are the entries of its recorded view that
are neither committed operations (those are justified by the serial
prefix, not replayed) nor pulled-uncommitted entries (those are foreign
tentative effects — §6.5 — and crucially do **not** ride along where
they could self-justify a dirty read: a view whose responses depend on a
never-committed write fails ``allowed`` at every memory version).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import OpacityViolation
from repro.core.history import History, TxRecord, TxStatus
from repro.core.ops import Op
from repro.core.spec import SequentialSpec

#: process-wide aggregate counters (the ``opacity.*`` family documented
#: in OBSERVABILITY.md); layers absorb this dict into their registries.
TMS2_STATS: Dict[str, int] = {
    "opacity.tms2.checks": 0,
    "opacity.tms2.steps": 0,
    "opacity.tms2.allowed_calls": 0,
    "opacity.agreement.checks": 0,
    "opacity.agreement.divergences": 0,
}


class Tms2Automaton:
    """The TMS2-style specification automaton, spec-generalized.

    State is the latest memory — the serial log of the operations of the
    transactions committed so far, in witness order; the full TMS2 memory
    *sequence* is recoverable as its prefixes at commit boundaries.  The
    three judgements mirror TMS2's ``DoCommit``/``DoRead`` validation,
    with ``spec.allowed`` standing in for register-file lookup:

    * :meth:`commit` — an updating commit: legal iff the memory extended
      by the transaction's own operations is allowed; returns the new
      memory (or ``None``);
    * :meth:`observe` — a read-only validation for aborted/active
      viewers: the own operations must be allowed at this memory, which
      is left unchanged;
    * :meth:`initial` — the empty memory.
    """

    __slots__ = ("spec", "allowed_calls")

    def __init__(self, spec: SequentialSpec):
        self.spec = spec
        self.allowed_calls = 0

    def initial(self) -> Tuple[Op, ...]:
        return ()

    def commit(
        self, memory: Tuple[Op, ...], own: Tuple[Op, ...]
    ) -> Optional[Tuple[Op, ...]]:
        candidate = memory + own
        self.allowed_calls += 1
        if not self.spec.allowed(candidate):
            return None
        return candidate

    def observe(self, memory: Tuple[Op, ...], own: Tuple[Op, ...]) -> bool:
        self.allowed_calls += 1
        return self.spec.allowed(memory + own)


def own_view(record: TxRecord, committed_ids: Set[int]) -> Tuple[Op, ...]:
    """The operations of ``record`` the automaton must validate.

    Committed records answer with their own operations (the recorded
    local-log order).  Aborted/active records answer with their observed
    view minus committed operations (justified by the serial prefix) and
    minus pulled-uncommitted entries (foreign tentative effects)."""
    if record.status is TxStatus.COMMITTED:
        return record.ops
    dirty = {op.op_id for op in record.pulled_uncommitted}
    return tuple(
        op
        for op in record.observed
        if op.op_id not in committed_ids and op.op_id not in dirty
    )


@dataclass
class Tms2Verdict:
    """The full result of one TMS2 decision (``violations`` is the
    bounded-checker-shaped surface most callers use)."""

    violations: List[str]
    #: DFS nodes expanded over committed linear extensions
    steps: int = 0
    #: ``spec.allowed`` judgements issued by the automaton
    allowed_calls: int = 0
    #: a witness serialization (tx_ids in witness order) when opaque
    witness: Optional[Tuple[int, ...]] = None

    @property
    def opaque(self) -> bool:
        return not self.violations


def decide_history_opaque_tms2(
    spec: SequentialSpec,
    history: History,
    machine=None,
    max_exhaustive: int = 6,
) -> Tms2Verdict:
    """Decide final-state opacity of ``history`` by TMS2 linearizability.

    ``machine`` is accepted (and ignored) for signature compatibility
    with :func:`repro.core.opacity.check_history_opaque`.  Raises
    :class:`~repro.core.errors.OpacityViolation` past the commit bound,
    mirroring the bounded checker's contract.
    """
    committed = history.committed_records()
    if len(committed) > max_exhaustive:
        raise OpacityViolation(
            f"TMS2 opacity check is bounded to {max_exhaustive} committed "
            f"transactions (got {len(committed)})"
        )
    committed_ids = {op.op_id for r in committed for op in r.ops}
    automaton = Tms2Automaton(spec)

    # Non-trivial records only: a record with no own operations is
    # placeable at any point (``allowed`` of the unchanged memory holds
    # by the search invariant), and dropping it cannot hide an ordering
    # conflict — the real-time interval order restricted to the rest has
    # the same linear extensions up to re-insertion.
    committers: List[Tuple[TxRecord, Tuple[Op, ...]]] = [
        (r, r.ops) for r in committed if r.ops
    ]
    viewers: List[Tuple[TxRecord, Tuple[Op, ...]]] = []
    for record in history.records:
        if record.status is TxStatus.COMMITTED:
            continue
        own = own_view(record, committed_ids)
        if own:
            viewers.append((record, own))
    # Interval orders topologically sort by end time (active = never).
    viewers.sort(
        key=lambda item: (
            item[0].end_time if item[0].end_time is not None else 1 << 60
        )
    )

    k = len(committers)
    # committed-committed real-time predecessors, as bitmasks
    pred_mask = [0] * k
    for i, (a, _) in enumerate(committers):
        for j, (b, _) in enumerate(committers):
            if i != j and history.precedes(a, b):
                pred_mask[j] |= 1 << i
    full = (1 << k) - 1

    # Diagnostics: was this record ever legal at any explored placement?
    committer_ok = [False] * k
    viewer_ok = [False] * len(viewers)
    steps = 0

    def viewers_placeable(order: Sequence[int]) -> bool:
        """Greedy monotone placement of the viewers against one complete
        committed witness order.

        Point ``p`` means "after the first ``p`` committed transactions".
        Each viewer's real-time constraints against committed records
        give a window ``[lo, hi]``; constraints among viewers demand the
        assignment be monotone along their interval order, for which
        smallest-feasible-point-first (in end-time order) is optimal:
        it pointwise-minimizes the assignment, so any feasible
        assignment dominates it.
        """
        memories: List[Tuple[Op, ...]] = [()]
        for index in order:
            memories.append(memories[-1] + committers[index][1])
        position = {index: pos for pos, index in enumerate(order)}
        assigned: List[int] = []
        for v, (record, own) in enumerate(viewers):
            lo, hi = 0, k
            for i, (c, _) in enumerate(committers):
                if history.precedes(c, record):
                    lo = max(lo, position[i] + 1)
                elif history.precedes(record, c):
                    hi = min(hi, position[i])
            for w in range(v):
                if history.precedes(viewers[w][0], record):
                    lo = max(lo, assigned[w])
            point = None
            for p in range(lo, hi + 1):
                if automaton.observe(memories[p], own):
                    viewer_ok[v] = True
                    point = p
                    break
            if point is None:
                return False
            assigned.append(point)
        return True

    witness: Optional[Tuple[int, ...]] = None

    def dfs(mask: int, memory: Tuple[Op, ...], order: List[int]) -> bool:
        nonlocal steps, witness
        if mask == full:
            if viewers_placeable(order):
                witness = tuple(committers[i][0].tx_id for i in order)
                return True
            return False
        for i in range(k):
            if mask >> i & 1 or pred_mask[i] & ~mask:
                continue
            steps += 1
            extended = automaton.commit(memory, committers[i][1])
            if extended is None:
                # prefix-closed: no extension of this serial prefix can
                # become allowed again — prune the whole subtree
                continue
            committer_ok[i] = True
            order.append(i)
            if dfs(mask | 1 << i, extended, order):
                return True
            order.pop()
        return False

    opaque = dfs(0, automaton.initial(), [])
    TMS2_STATS["opacity.tms2.checks"] += 1
    TMS2_STATS["opacity.tms2.steps"] += steps
    TMS2_STATS["opacity.tms2.allowed_calls"] += automaton.allowed_calls
    if opaque:
        return Tms2Verdict(
            [], steps=steps, allowed_calls=automaton.allowed_calls,
            witness=witness,
        )
    violations: List[str] = []
    for i, (record, _) in enumerate(committers):
        if not committer_ok[i]:
            violations.append(_violation(record))
    for v, (record, _) in enumerate(viewers):
        if not viewer_ok[v]:
            violations.append(_violation(record))
    if not violations:
        total = k + len(viewers)
        violations.append(
            f"no serialization of {total} transactions satisfies both "
            f"real-time order and TMS2 validation"
        )
    return Tms2Verdict(
        violations, steps=steps, allowed_calls=automaton.allowed_calls
    )


def _violation(record: TxRecord) -> str:
    return (
        f"tx {record.tx_id} ({record.status.value}) observed an "
        f"inconsistent view of {len(record.observed)} operations"
    )


def check_history_opaque_tms2(
    spec: SequentialSpec,
    history: History,
    machine=None,
    max_exhaustive: int = 6,
) -> List[str]:
    """Drop-in peer of :func:`repro.core.opacity.check_history_opaque`:
    same signature, same violation-string shape, but a sound *and*
    complete (final-state) verdict on bounded scopes."""
    return decide_history_opaque_tms2(
        spec, history, machine, max_exhaustive
    ).violations


@dataclass
class OpacityAgreement:
    """One differential run of both opacity oracles over one history."""

    bounded: List[str] = field(default_factory=list)
    tms2: List[str] = field(default_factory=list)
    #: both checkers ran to completion inside their bounds
    checked: bool = False

    @property
    def agree(self) -> bool:
        return bool(self.bounded) == bool(self.tms2)

    @property
    def divergent(self) -> bool:
        return self.checked and not self.agree

    def describe(self) -> str:
        return (
            f"bounded={'reject' if self.bounded else 'accept'} "
            f"tms2={'reject' if self.tms2 else 'accept'}"
        )


def check_opacity_agreement(
    spec: SequentialSpec,
    history: History,
    machine=None,
    max_exhaustive: int = 6,
) -> OpacityAgreement:
    """Run the bounded checker and the TMS2 decision procedure over the
    same history and compare verdicts.  Disagreement is meaningful in one
    direction only — the bounded checker accepting a history TMS2 rejects
    witnesses its known incompleteness; the converse would be a bug in
    one of the two.  Histories past either bound report ``checked=False``
    and never count as divergent."""
    from repro.core.opacity import check_history_opaque

    result = OpacityAgreement()
    try:
        result.bounded = check_history_opaque(
            spec, history, machine, max_exhaustive
        )
        result.tms2 = check_history_opaque_tms2(
            spec, history, machine, max_exhaustive
        )
    except OpacityViolation:
        return result
    result.checked = True
    TMS2_STATS["opacity.agreement.checks"] += 1
    if not result.agree:
        TMS2_STATS["opacity.agreement.divergences"] += 1
    return result


def tms2_stats_snapshot() -> Dict[str, int]:
    """A copy of the process-wide ``opacity.*`` counters (absorbable by
    :meth:`repro.obs.metrics.MetricsRegistry.absorb`)."""
    return dict(TMS2_STATS)
