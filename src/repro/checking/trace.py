"""Rule traces: record, replay and pretty-print machine executions.

The paper communicates algorithms as decompositions into rule sequences
(Figure 2's annotations, Figure 7's table).  :class:`TraceRecorder` wraps
a machine and records every rule application; traces can be

* pretty-printed in the Figure 7 style (:func:`format_figure7`);
* replayed on a fresh machine (:func:`replay`) — the regression tool the
  tests use to pin down rule sequences exactly;
* summarised per rule (:meth:`TraceRecorder.histogram`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.machine import Machine
from repro.core.ops import Op


@dataclass(frozen=True)
class TraceEvent:
    """One rule application: the rule name, the acting thread and (where
    applicable) the operation's payload."""

    rule: str
    tid: int
    method: Optional[str] = None
    args: Optional[Tuple] = None
    ret: Any = None

    def pretty(self) -> str:
        if self.method is None:
            return f"{self.rule}"
        arg_text = ", ".join(repr(a) for a in self.args or ())
        return f"{self.rule}({self.method}({arg_text}))"


class TraceRecorder:
    """A machine proxy that records rule applications.

    Usage mirrors the machine::

        rec = TraceRecorder(Machine(spec))
        rec, tid = rec.spawn(program)
        rec = rec.app(tid)
        ...
        print(format_figure7(rec.trace))

    The recorder is immutable like the machine: each step returns a new
    recorder sharing the (append-only) trace list.
    """

    RULES_WITH_OP = {"push", "unpush", "pull", "unpull"}

    def __init__(self, machine: Machine, trace: Optional[List[TraceEvent]] = None):
        self.machine = machine
        self.trace: List[TraceEvent] = trace if trace is not None else []

    def spawn(self, code, stack=None, tid=None):
        new_machine, new_tid = self.machine.spawn(code, stack, tid)
        self.trace.append(TraceEvent("SPAWN", new_tid))
        return TraceRecorder(new_machine, self.trace), new_tid

    def _step(self, rule: str, tid: int, *args) -> "TraceRecorder":
        new_machine = getattr(self.machine, rule)(tid, *args)
        op: Optional[Op] = None
        if rule in self.RULES_WITH_OP and args:
            op = args[0]
        elif rule == "app":
            op = new_machine.thread(tid).local[-1].op
        elif rule == "unapp":
            op = self.machine.thread(tid).local[-1].op
        if op is not None:
            event = TraceEvent(rule.upper(), tid, op.method, op.args, op.ret)
        else:
            event = TraceEvent(rule.upper(), tid)
        self.trace.append(event)
        return TraceRecorder(new_machine, self.trace)

    def app(self, tid, choice=None):
        if choice is None:
            return self._step("app", tid)
        return self._step("app", tid, choice)

    def unapp(self, tid):
        return self._step("unapp", tid)

    def push(self, tid, op):
        return self._step("push", tid, op)

    def unpush(self, tid, op):
        return self._step("unpush", tid, op)

    def pull(self, tid, op):
        return self._step("pull", tid, op)

    def unpull(self, tid, op):
        return self._step("unpull", tid, op)

    def cmt(self, tid):
        return self._step("cmt", tid)

    def end_thread(self, tid):
        new_machine = self.machine.end_thread(tid)
        self.trace.append(TraceEvent("END", tid))
        return TraceRecorder(new_machine, self.trace)

    def __getattr__(self, name):
        return getattr(self.machine, name)

    def histogram(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.trace:
            counts[event.rule] = counts.get(event.rule, 0) + 1
        return counts


def format_figure7(trace: Sequence[TraceEvent]) -> str:
    """Render a trace in the style of Figure 7 (one rule per line,
    operation payloads inline)."""
    lines = []
    for event in trace:
        if event.rule in ("SPAWN", "END"):
            continue
        lines.append(f"t{event.tid}: {event.pretty()}")
    return "\n".join(lines)


def replay(spec, trace: Sequence[TraceEvent], programs) -> Machine:
    """Re-execute a recorded trace on a fresh machine.

    Operation identities differ across runs, so PUSH/PULL/UNPUSH/UNPULL
    events are re-resolved by payload: the replayer picks the (unique)
    matching operation in the new machine's logs.  APP events re-resolve
    their ``step`` choice by method+args.  Raises ``ValueError`` when the
    trace does not fit (e.g. the programs changed).
    """
    machine = Machine(spec)
    tid_map: Dict[int, int] = {}
    program_iter = iter(programs)
    for event in trace:
        if event.rule == "SPAWN":
            machine, new_tid = machine.spawn(next(program_iter))
            tid_map[event.tid] = new_tid
            continue
        tid = tid_map[event.tid]
        if event.rule == "APP":
            choice = _find_choice(machine, tid, event)
            machine = machine.app(tid, choice)
        elif event.rule == "UNAPP":
            machine = machine.unapp(tid)
        elif event.rule in ("PUSH", "UNPUSH"):
            op = _find_local_op(machine, tid, event)
            machine = getattr(machine, event.rule.lower())(tid, op)
        elif event.rule == "PULL":
            op = _find_global_op(machine, event)
            machine = machine.pull(tid, op)
        elif event.rule == "UNPULL":
            op = _find_local_op(machine, tid, event)
            machine = machine.unpull(tid, op)
        elif event.rule == "CMT":
            machine = machine.cmt(tid)
        elif event.rule == "END":
            machine = machine.end_thread(tid)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown trace rule {event.rule}")
    return machine


def _find_choice(machine: Machine, tid: int, event: TraceEvent):
    for choice in machine.app_choices(tid):
        if choice[0].method == event.method and choice[0].args == event.args:
            return choice
    raise ValueError(f"replay: no step choice matches {event.pretty()}")


def _find_local_op(machine: Machine, tid: int, event: TraceEvent) -> Op:
    for entry in machine.thread(tid).local:
        op = entry.op
        if (op.method, op.args, op.ret) == (event.method, event.args, event.ret):
            return op
    raise ValueError(f"replay: no local op matches {event.pretty()}")


def _find_global_op(machine: Machine, event: TraceEvent) -> Op:
    for entry in machine.global_log:
        op = entry.op
        if (op.method, op.args, op.ret) == (event.method, event.args, event.ret):
            return op
    raise ValueError(f"replay: no global op matches {event.pretty()}")
