"""The PUSH/PULL model core (§3–§5 of the paper).

Public surface:

* operation records and logs — :mod:`repro.core.ops`, :mod:`repro.core.logs`
* sequential specifications — :mod:`repro.core.spec`
* precongruence ``≼`` and movers ``◁`` — :mod:`repro.core.precongruence`
* the transaction language — :mod:`repro.core.language`
* the atomic (reference) semantics — :mod:`repro.core.atomic`
* the PUSH/PULL machine — :mod:`repro.core.machine`
* §5's invariants and rewind relations — :mod:`repro.core.invariants`,
  :mod:`repro.core.rewind`
* serializability and opacity checkers — :mod:`repro.core.serializability`,
  :mod:`repro.core.opacity`
"""

from repro.core.errors import (
    CriterionViolation,
    LanguageError,
    LogError,
    MachineError,
    OpacityViolation,
    ReproError,
    SerializabilityViolation,
    SpecError,
    TMAbort,
)
from repro.core.language import Call, Choice, Code, Seq, Skip, SKIP, Star, Tx, call, choice, seq, tx
from repro.core.logs import GlobalLog, LocalLog, EMPTY_GLOBAL, EMPTY_LOCAL
from repro.core.machine import Machine, Thread
from repro.core.ops import IdGenerator, Op, make_op
from repro.core.spec import MemoizedMovers, NondetSpec, SequentialSpec, StateSpec

__all__ = [
    "Call",
    "Choice",
    "Code",
    "CriterionViolation",
    "EMPTY_GLOBAL",
    "EMPTY_LOCAL",
    "GlobalLog",
    "IdGenerator",
    "LanguageError",
    "LocalLog",
    "LogError",
    "Machine",
    "MachineError",
    "MemoizedMovers",
    "NondetSpec",
    "Op",
    "OpacityViolation",
    "ReproError",
    "SequentialSpec",
    "SerializabilityViolation",
    "Seq",
    "Skip",
    "SKIP",
    "SpecError",
    "Star",
    "StateSpec",
    "TMAbort",
    "Thread",
    "Tx",
    "call",
    "choice",
    "make_op",
    "seq",
    "tx",
]
