"""The generic transaction language of §3 (Example 1).

::

    c ::= c1 + c2 | c1 ; c2 | (c)* | skip | tx c | m

Programs are immutable ASTs.  Following the paper's "first trick", the rest
of the semantics never pattern-matches on programs directly; it only uses

* ``step(c)`` — the set of pairs ``(m, c')`` such that ``m`` is a next
  reachable method in the reduction of ``c`` with remaining code ``c'``;
* ``fin(c)`` — whether ``c`` can reduce to ``skip`` without encountering a
  method call.

Method occurrences are :class:`Call` nodes carrying the method name and the
literal argument tuple (the paper's ``m`` together with the pre-stack the
operation record will receive).

Well-formedness (§3): every ``Call`` must be contained within a ``tx``
block; :func:`check_well_formed` enforces this.  As in the paper, nested
transactions are ignored — ``tx (… tx c …)`` is rejected.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple

from repro.core.errors import LanguageError


class Code:
    """Base class for program ASTs.  All nodes are frozen and hashable."""

    def __add__(self, other: "Code") -> "Choice":
        return Choice(self, other)

    def then(self, other: "Code") -> "Seq":
        return Seq(self, other)


@dataclass(frozen=True)
class Skip(Code):
    """The terminated program ``skip``."""

    def __repr__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Call(Code):
    """A method occurrence ``m`` with its literal arguments."""

    method: str
    args: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        arg_text = ", ".join(repr(a) for a in self.args)
        return f"{self.method}({arg_text})"


@dataclass(frozen=True)
class Seq(Code):
    """Sequential composition ``c1 ; c2``."""

    first: Code
    second: Code

    def __repr__(self) -> str:
        return f"({self.first!r} ; {self.second!r})"


@dataclass(frozen=True)
class Choice(Code):
    """Nondeterministic choice ``c1 + c2``."""

    left: Code
    right: Code

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


@dataclass(frozen=True)
class Star(Code):
    """Nondeterministic looping ``(c)*``."""

    body: Code

    def __repr__(self) -> str:
        return f"({self.body!r})*"


@dataclass(frozen=True)
class Tx(Code):
    """A transaction block ``tx c``."""

    body: Code

    def __repr__(self) -> str:
        return f"tx {self.body!r}"


SKIP = Skip()


def seq(*parts: Code) -> Code:
    """Right-nested sequential composition of ``parts`` (``skip`` if empty)."""
    if not parts:
        return SKIP
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = Seq(part, result)
    return result


def choice(*alternatives: Code) -> Code:
    """Left-nested nondeterministic choice (at least one alternative)."""
    if not alternatives:
        raise LanguageError("choice() needs at least one alternative")
    result = alternatives[0]
    for alt in alternatives[1:]:
        result = Choice(result, alt)
    return result


def tx(*parts: Code) -> Tx:
    """A transaction whose body is ``seq(*parts)``."""
    return Tx(seq(*parts))


def call(method: str, *args: Any) -> Call:
    return Call(method, tuple(args))


# ---------------------------------------------------------------------------
# step / fin (Example 1)
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def step(code: Code) -> FrozenSet[Tuple[Call, Code]]:
    """``step(c)``: pairs ``(m, c')`` with ``m`` a next reachable method.

    Mirrors Example 1 of the paper literally, including the two auxiliary
    liftings ``S ; c`` and ``B ; S``.  Memoized: code nodes are immutable
    and the machine re-queries ``step`` of the same residual programs on
    every APP probe.
    """
    if isinstance(code, Skip):
        return frozenset()
    if isinstance(code, Call):
        return frozenset({(code, SKIP)})
    if isinstance(code, Seq):
        first_steps = frozenset(
            (m, seq_cont(cont, code.second)) for m, cont in step(code.first)
        )
        if fin(code.first):
            return first_steps | step(code.second)
        return first_steps
    if isinstance(code, Choice):
        return step(code.left) | step(code.right)
    if isinstance(code, Star):
        return frozenset(
            (m, seq_cont(cont, code)) for m, cont in step(code.body)
        )
    if isinstance(code, Tx):
        return step(code.body)
    raise LanguageError(f"unknown code node {code!r}")


def seq_cont(cont: Code, rest: Code) -> Code:
    """``(m, c1) ; c2 = (m, c1; c2)`` with the ``skip`` unit folded away."""
    if isinstance(cont, Skip):
        return rest
    return Seq(cont, rest)


def sorted_choices(code: Code) -> Tuple[Tuple[Call, Code], ...]:
    """``step(code)`` in a deterministic order, cached on the (immutable)
    code node itself.

    The model checker resolves every APP instance through this on every
    visit of every state; ``repr`` of program ASTs is recursive and even an
    ``lru_cache`` lookup re-hashes the (recursive) node per call, so the
    tuple is stored as an attribute on the node — the same discipline as
    the log-projection caches (one pointer load on every revisit)."""
    try:
        return code._schoices  # type: ignore[attr-defined]
    except AttributeError:
        pass
    choices = tuple(sorted(step(code), key=repr))
    object.__setattr__(code, "_schoices", choices)
    return choices


def fin_cached(code: Code) -> bool:
    """:func:`fin` cached as an attribute on the (immutable) code node —
    the same discipline as :func:`sorted_choices`: the CMT criterion probes
    ``fin`` on every visit of every state, and even an ``lru_cache`` lookup
    re-hashes the recursive node per call."""
    try:
        return code._fin  # type: ignore[attr-defined]
    except AttributeError:
        pass
    value = fin(code)
    object.__setattr__(code, "_fin", value)
    return value


@functools.lru_cache(maxsize=None)
def fin(code: Code) -> bool:
    """``fin(c)``: ``c`` can reduce to ``skip`` with no method call.
    Memoized like :func:`step`."""
    if isinstance(code, Skip):
        return True
    if isinstance(code, Call):
        return False
    if isinstance(code, Seq):
        return fin(code.first) and fin(code.second)
    if isinstance(code, Choice):
        return fin(code.left) or fin(code.right)
    if isinstance(code, Star):
        return True
    if isinstance(code, Tx):
        return fin(code.body)
    raise LanguageError(f"unknown code node {code!r}")


# ---------------------------------------------------------------------------
# Well-formedness
# ---------------------------------------------------------------------------


def check_well_formed(code: Code) -> None:
    """Every method call inside a ``tx``; no nested ``tx`` (§3)."""
    _check(code, in_tx=False)


def _check(code: Code, in_tx: bool) -> None:
    if isinstance(code, Skip):
        return
    if isinstance(code, Call):
        if not in_tx:
            raise LanguageError(f"method {code!r} occurs outside any tx block")
        return
    if isinstance(code, (Seq, Choice)):
        left = code.first if isinstance(code, Seq) else code.left
        right = code.second if isinstance(code, Seq) else code.right
        _check(left, in_tx)
        _check(right, in_tx)
        return
    if isinstance(code, Star):
        _check(code.body, in_tx)
        return
    if isinstance(code, Tx):
        if in_tx:
            raise LanguageError("nested transactions are not modelled (§3)")
        _check(code.body, in_tx=True)
        return
    raise LanguageError(f"unknown code node {code!r}")


def methods_of(code: Code) -> FrozenSet[Call]:
    """All method occurrences syntactically reachable in ``code`` (used by
    the opacity §6.1 "reachable operations" analysis)."""
    if isinstance(code, Skip):
        return frozenset()
    if isinstance(code, Call):
        return frozenset({code})
    if isinstance(code, Seq):
        return methods_of(code.first) | methods_of(code.second)
    if isinstance(code, Choice):
        return methods_of(code.left) | methods_of(code.right)
    if isinstance(code, Star):
        return methods_of(code.body)
    if isinstance(code, Tx):
        return methods_of(code.body)
    raise LanguageError(f"unknown code node {code!r}")
