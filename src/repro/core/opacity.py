"""Opacity as a fragment of PUSH/PULL (§6.1).

The paper characterises opacity [Guerraoui & Kapalka] inside PUSH/PULL in
two ways:

1. **The no-uncommitted-PULL fragment.**  If transactions only ever PULL
   operations flagged ``gCmt``, they never observe tentative effects and
   the execution is opaque.  :class:`OpaqueMachine` enforces this
   syntactically (a PULL of a ``gUCmt`` entry raises
   :class:`~repro.core.errors.OpacityViolation`).

2. **The commutative relaxation.**  A transaction *may* PULL an
   uncommitted operation ``m'`` provided it will never execute a method
   that fails to commute with ``m'`` — checkable by examining the set of
   reachable operations of its remaining code.  :func:`may_pull_uncommitted`
   implements the static variant over ``methods_of(c)``, using a
   conservative per-call commutativity judgement supplied by the spec
   (``call_commutes``), and :class:`OpacityMonitor` implements the dynamic
   variant: record pulled-uncommitted operations and flag any later APP of
   a non-commuting method while the producer is still uncommitted.

Finally :func:`check_history_opaque` is the history-level checker: every
transaction — *including aborted ones* — must have observed a local view
consistent with some serial execution of (a subset of) the committed
transactions.  This is the standard final-state opacity condition, decided
here by bounded search (adequate for model-checker scopes).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.errors import OpacityViolation
from repro.core.history import History, TxRecord
from repro.core.language import Call, Code, methods_of
from repro.core.machine import Machine
from repro.core.ops import Op
from repro.core.precongruence import precongruent
from repro.core.spec import SequentialSpec


class OpaqueMachine:
    """A :class:`~repro.core.machine.Machine` wrapper enforcing fragment
    (1): PULL is only permitted on committed global-log entries.

    All other rules delegate unchanged — the wrapper owns no state beyond
    the current machine, exposed as :attr:`machine`.
    """

    def __init__(self, machine: Machine):
        self.machine = machine

    def _lift(self, new_machine: Machine) -> "OpaqueMachine":
        return OpaqueMachine(new_machine)

    def pull(self, tid: int, op: Op) -> "OpaqueMachine":
        entry = self.machine.global_log.entry_for(op)
        if entry is not None and not entry.is_committed:
            raise OpacityViolation(
                f"opaque fragment forbids PULL of uncommitted {op.pretty()}"
            )
        return self._lift(self.machine.pull(tid, op))

    def __getattr__(self, name: str):
        attribute = getattr(self.machine, name)
        if callable(attribute) and name in (
            "app",
            "unapp",
            "push",
            "unpush",
            "unpull",
            "cmt",
            "end_thread",
        ):

            def wrapped(*args, **kwargs):
                return self._lift(attribute(*args, **kwargs))

            return wrapped
        if name == "spawn":

            def wrapped_spawn(*args, **kwargs):
                new_machine, tid = attribute(*args, **kwargs)
                return self._lift(new_machine), tid

            return wrapped_spawn
        return attribute


def may_pull_uncommitted(
    machine: Machine, tid: int, op: Op
) -> bool:
    """Fragment (2), static form: thread ``tid`` may PULL uncommitted
    ``op`` if every method reachable in its remaining code commutes with
    ``op`` for every possible return value.

    The per-call judgement is delegated to the spec's optional
    ``call_commutes(method, args, op) -> bool`` (conservative: must only
    answer ``True`` when commutation holds for *all* rets); specs without
    it fall back to ``False`` — i.e. no relaxation.
    """
    spec = machine.spec
    judge = getattr(spec, "call_commutes", None)
    if judge is None:
        return False
    thread = machine.thread(tid)
    for call_node in methods_of(thread.code):
        if not judge(call_node.method, call_node.args, op):
            return False
    return True


class OpacityMonitor:
    """Fragment (2), dynamic form.

    Tracks, per thread, the uncommitted operations it has pulled.  On each
    APP the monitor checks the new operation commutes with every tracked
    operation whose producer is *still* uncommitted; a failure means the
    execution has left the opaque fragment.
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self._pulled_uncommitted: Dict[int, List[Op]] = {}

    def note_pull(self, tid: int, op: Op, machine_after: Machine) -> None:
        entry = machine_after.global_log.entry_for(op)
        if entry is not None and not entry.is_committed:
            self._pulled_uncommitted.setdefault(tid, []).append(op)
        self.machine = machine_after

    def note_app(self, tid: int, new_op: Op, machine_after: Machine) -> None:
        for pulled in self._pulled_uncommitted.get(tid, ()):
            entry = machine_after.global_log.entry_for(pulled)
            still_uncommitted = entry is not None and not entry.is_committed
            if still_uncommitted and not machine_after.movers.commutes(
                new_op, pulled
            ):
                raise OpacityViolation(
                    f"thread {tid} applied {new_op.pretty()} which does not "
                    f"commute with pulled uncommitted {pulled.pretty()}"
                )
        self.machine = machine_after

    def note_step(self, machine_after: Machine) -> None:
        self.machine = machine_after


def check_view_consistent(
    spec: SequentialSpec,
    committed_tx_ops: Sequence[Tuple[Op, ...]],
    view: Tuple[Op, ...],
    max_exhaustive: int = 6,
) -> bool:
    """Is ``view`` (a transaction's observed local log) justified by some
    serial execution of a subset of the committed transactions?

    Opacity constrains a transaction's *operations and responses*: the
    return values its own operations produced must match what some serial
    execution of committed transactions would have assigned.  Pulled
    entries are bookkeeping, not observations — a pulled operation only
    becomes observable through a later own response, so the check
    quantifies serial logs ``s`` (each permutation of each subset of the
    committed transactions — subsets let later commits serialize after
    the viewer) and asks whether ``s`` extended by the viewer's *own*
    operations is allowed.  A transaction that read an uncommitted value
    whose producer never committed (the §6.5 cascade victim) fails for
    every ``s``.  This is final-state view consistency; real-time
    constraints are the serializability checker's job.
    """
    n = len(committed_tx_ops)
    if n > max_exhaustive:
        raise OpacityViolation(
            f"opacity view check is bounded to {max_exhaustive} committed "
            f"transactions (got {n})"
        )
    committed_ids = {
        op.op_id for ops in committed_tx_ops for op in ops
    }
    own = tuple(op for op in view if op.op_id not in committed_ids)

    # DFS over serial prefixes instead of enumerate-all-permutations:
    # ``allowed`` is prefix-closed, so a prefix that is not allowed can
    # never become allowed by extension — the entire subtree of orders
    # starting with it (and every candidate built from them) is pruned
    # with a single judgement.  The verdict is identical to the full
    # enumeration: any candidate the old loop would have accepted has
    # every prefix allowed, so its path survives the pruning.
    def extend(serial: Tuple[Op, ...], used: int) -> bool:
        if spec.allowed(serial + own):
            return True
        for index in range(n):
            if used >> index & 1:
                continue
            candidate = serial + committed_tx_ops[index]
            if spec.allowed(candidate) and extend(candidate, used | 1 << index):
                return True
        return False

    return extend((), 0)


def check_history_opaque(
    spec: SequentialSpec,
    history: History,
    machine: Machine,
    max_exhaustive: int = 6,
) -> List[str]:
    """Final-state opacity over a recorded run: every attempt's observed
    view (committed *and* aborted) must be consistent per
    :func:`check_view_consistent`.  Returns violation strings."""
    committed_tx_ops = [r.ops for r in history.committed_records()]
    violations: List[str] = []
    for record in history.records:
        if not record.observed:
            continue
        if not check_view_consistent(
            spec, committed_tx_ops, record.observed, max_exhaustive
        ):
            violations.append(
                f"tx {record.tx_id} ({record.status.value}) observed an "
                f"inconsistent view of {len(record.observed)} operations"
            )
    return violations
