"""Sequential specifications (Parameter 3.1).

The PUSH/PULL model is parameterized by a *sequential specification*: a
prefix-closed predicate ``allowed ℓ`` on operation logs.  The paper expects
``allowed`` to be induced by a denotation ``[[op]] : P(State × State)`` with
``allowed ℓ ≡ ([[ℓ]] ≠ ∅)``; this module provides exactly that construction.

Two families are offered:

:class:`StateSpec`
    Deterministic functional specifications — one initial state and one
    transition per (state, method, args).  This covers every data type the
    paper's evaluation needs (memory, counter, set, map, queue, stack, bank
    accounts) and admits *exact* decision procedures for the precongruence
    ``≼`` and the mover relations (see :mod:`repro.core.precongruence`).

:class:`NondetSpec`
    Relational specifications (a set of initial states, a set of successor
    states per operation).  ``allowed`` remains decidable by forward
    exploration; ``≼`` falls back to bounded coinduction.

Both expose the same surface used by the machine:

* ``allowed(ops)``       — the predicate of Parameter 3.1;
* ``allows(ops, op)``    — ``ℓ allows op``, i.e. ``allowed (ℓ · op)``;
* ``result(ops, m, args)`` — the return value the specification assigns to
  invoking ``m(args)`` after replaying ``ops`` (used by TM drivers to give
  methods their post-stacks);
* mover oracles ``commutes`` / ``left_mover`` / ``right_mover`` used by the
  rule criteria.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, FrozenSet, Iterable, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.core.errors import SpecError
from repro.core.ops import Op, OpClass, payload_class_id, payload_of
from repro.obs.tracer import CAT_MOVER, NULL_TRACER, Tracer


class SequentialSpec(ABC):
    """Abstract sequential specification.

    Subclasses must provide ``allowed`` (prefix-closed) and the mover
    oracles; everything else in the library is generic in the spec.
    """

    # -- the specification predicate ----------------------------------------

    @abstractmethod
    def allowed(self, ops: Sequence[Op]) -> bool:
        """The ``allowed ℓ`` predicate of Parameter 3.1 (prefix closed)."""

    def allows(self, ops: Sequence[Op], op: Op) -> bool:
        """``ℓ allows op  ≡  allowed (ℓ · op)``."""
        return self.allowed(tuple(ops) + (op,))

    # -- return-value synthesis ----------------------------------------------

    @abstractmethod
    def result(self, ops: Sequence[Op], method: str, args: Tuple[Any, ...]) -> Any:
        """The return value (post-stack) of ``method(args)`` after ``ops``.

        For nondeterministic specs any allowed return value may be chosen.
        Raises :class:`SpecError` if ``ops`` itself is not allowed.
        """

    # -- movers ----------------------------------------------------------------

    @abstractmethod
    def commutes(self, op1: Op, op2: Op) -> bool:
        """Whether ``op1`` and ``op2`` commute: in every context allowing
        one order, the other order is allowed and observationally equal.
        Commutativity implies both ``op1 ◁ op2`` and ``op2 ◁ op1``."""

    def left_mover(self, op1: Op, op2: Op) -> bool:
        """``op1 ◁ op2`` (Definition 4.1): for every log ``ℓ``,
        ``ℓ·op1·op2 ≼ ℓ·op2·op1``.

        The default is the sound under-approximation by commutativity;
        specifications with useful asymmetric movers override this.
        """
        return self.commutes(op1, op2)

    def right_mover(self, op1: Op, op2: Op) -> bool:
        """``op1 ▷ op2``: ``op1`` moves to the right of ``op2``, i.e.
        ``op2 ◁ op1``."""
        return self.left_mover(op2, op1)

    # -- helpers for checkers ---------------------------------------------------

    def probe_ops(self) -> Iterable[Op]:
        """A finite set of operations used by bounded-coinduction checkers
        as the extension universe.  Empty by default (checkers then only
        compare at depth zero)."""
        return ()

    # -- abstract footprints (driver-level metadata) ----------------------------

    def footprint(self, method: str, args: Tuple[Any, ...]) -> frozenset:
        """The set of abstract keys ``method(args)`` may touch.

        Drivers use footprints for boosting's abstract locks, HTM conflict
        sets and relevance-based PULLing.  Soundness contract: two calls
        with disjoint footprints commute for *every* return value, and an
        operation's return value and state effect depend only on prior
        operations with intersecting footprints.
        """
        raise SpecError(f"{type(self).__name__} does not define footprints")

    def op_footprint(self, op: Op) -> frozenset:
        return self.footprint(op.method, op.args)

    def is_mutator(self, method: str) -> bool:
        """Whether ``method`` can change the state (pure observers return
        ``False``).  Drivers use this to prune relevance pulls."""
        raise SpecError(f"{type(self).__name__} does not classify mutators")

    def call_commutes(self, method: str, args: Tuple[Any, ...], op: Op) -> bool:
        """Conservative §6.1 judgement: does ``method(args)`` commute with
        ``op`` for *every* possible return value?  The default answers
        ``True`` exactly on disjoint footprints; specs with richer
        commutativity (e.g. counter mutators) override."""
        try:
            return self.footprint(method, args).isdisjoint(self.op_footprint(op))
        except SpecError:
            return False


class StateSpec(SequentialSpec):
    """Deterministic functional specification.

    Subclasses implement :meth:`initial_state` and :meth:`perform`; the
    denotational ``allowed`` and everything else is derived.  States must be
    hashable (frozen) values.
    """

    # -- to be provided by subclasses --------------------------------------

    @abstractmethod
    def initial_state(self) -> Any:
        """The (single) initial state ``I``."""

    @abstractmethod
    def perform(self, state: Any, method: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        """Execute ``method(args)`` in ``state``; return ``(ret, state')``.

        Must be total for every method the spec declares (raising
        :class:`SpecError` for unknown methods) — "disallowed" only ever
        means *the recorded return value disagrees with the state*.
        """

    # -- observational projection -------------------------------------------

    def observe(self, state: Any) -> Any:
        """Projection of a state onto its observable part.  The default is
        the identity; override to model unobservable state components (the
        paper's ``≼`` permits unobservable differences)."""
        return state

    # -- derived machinery -----------------------------------------------------

    def apply(self, state: Any, op: Op) -> Optional[Any]:
        """``[[op]]`` at ``state``: the successor state, or ``None`` if the
        recorded post-stack disagrees with the state (op not allowed here).
        """
        ret, new_state = self.perform(state, op.method, op.args)
        if ret != op.ret:
            return None
        return new_state

    def replay(self, ops: Sequence[Op]) -> Optional[Any]:
        """``[[ℓ]]`` from the initial state, or ``None`` if disallowed."""
        state = self.initial_state()
        for op in ops:
            state = self.apply(state, op)
            if state is None:
                return None
        return state

    def allowed(self, ops: Sequence[Op]) -> bool:
        return self.replay(ops) is not None

    def result(self, ops: Sequence[Op], method: str, args: Tuple[Any, ...]) -> Any:
        state = self.replay(ops)
        if state is None:
            raise SpecError("result() called on a disallowed log")
        ret, _ = self.perform(state, method, args)
        return ret

    # -- exact precongruence for deterministic specs -----------------------------

    def precongruent(self, l1: Sequence[Op], l2: Sequence[Op]) -> bool:
        """Exact ``ℓ1 ≼ ℓ2`` (Definition 3.1) for deterministic specs.

        With a single deterministic denotation, coinduction collapses to:
        either ``ℓ1`` is disallowed (then every extension of ``ℓ1`` is too,
        by prefix closure, so the greatest fixpoint holds vacuously), or
        ``ℓ2`` is allowed and the two final states are observationally
        equal (then both logs allow exactly the same extensions forever).
        """
        s1 = self.replay(l1)
        if s1 is None:
            return True
        s2 = self.replay(l2)
        if s2 is None:
            return False
        return self.observe(s1) == self.observe(s2)

    # -- mover checking on explicit state sets ------------------------------------

    def mover_states(self, op1: Op, op2: Op) -> Optional[Iterable[Any]]:
        """A finite set of states sufficient to decide movers for the pair,
        or ``None`` if the subclass instead overrides the oracles directly.
        """
        return None

    def _check_swap_on_state(self, state: Any, op1: Op, op2: Op) -> bool:
        """``ℓ·op1·op2 ≼ ℓ·op2·op1`` at one state ``[[ℓ]] = state``."""
        s_a = self.apply(state, op1)
        s_ab = self.apply(s_a, op2) if s_a is not None else None
        if s_ab is None:
            return True  # left side disallowed: vacuous
        s_b = self.apply(state, op2)
        s_ba = self.apply(s_b, op1) if s_b is not None else None
        if s_ba is None:
            return False
        return self.observe(s_ab) == self.observe(s_ba)

    def left_mover(self, op1: Op, op2: Op) -> bool:
        states = self.mover_states(op1, op2)
        if states is None:
            return self.commutes(op1, op2)
        return all(self._check_swap_on_state(s, op1, op2) for s in states)

    def commutes(self, op1: Op, op2: Op) -> bool:
        states = self.mover_states(op1, op2)
        if states is None:
            raise SpecError(
                f"{type(self).__name__} provides neither mover_states() nor "
                "a commutes() oracle"
            )
        return all(
            self._check_swap_on_state(s, op1, op2)
            and self._check_swap_on_state(s, op2, op1)
            for s in states
        )


class RebasedStateSpec(StateSpec):
    """``base`` started from a different initial state.

    Used by the runtime's log compaction: once every global-log entry is
    committed and no transaction is live, the log can be replayed into a
    new initial state and dropped, keeping ``allowed``-check costs bounded
    by per-transaction (not per-run) log lengths.  All behaviour except
    :meth:`initial_state` delegates to ``base`` — mover oracles quantify
    over all states, so they are unaffected by rebasing.
    """

    def __init__(self, base: StateSpec, state: Any):
        while isinstance(base, RebasedStateSpec):
            base = base.base
        self.base = base
        self._state = state

    def initial_state(self) -> Any:
        return self._state

    def perform(self, state, method, args):
        return self.base.perform(state, method, args)

    def observe(self, state):
        return self.base.observe(state)

    def mover_states(self, op1, op2):
        return self.base.mover_states(op1, op2)

    def left_mover(self, op1, op2):
        return self.base.left_mover(op1, op2)

    def commutes(self, op1, op2):
        return self.base.commutes(op1, op2)

    def probe_ops(self):
        return self.base.probe_ops()

    def footprint(self, method, args):
        return self.base.footprint(method, args)

    def is_mutator(self, method):
        return self.base.is_mutator(method)

    def call_commutes(self, method, args, op):
        return self.base.call_commutes(method, args, op)


class NondetSpec(SequentialSpec):
    """Relational (nondeterministic) specification.

    Subclasses implement :meth:`initial_states` and :meth:`apply_set`.
    ``allowed`` is non-emptiness of the forward image; ``≼`` has no exact
    shortcut and is handled by the bounded checker in
    :mod:`repro.core.precongruence`.
    """

    @abstractmethod
    def initial_states(self) -> FrozenSet[Any]:
        """The set ``I`` of initial states."""

    @abstractmethod
    def apply_set(self, state: Any, op: Op) -> FrozenSet[Any]:
        """``[[op]]`` at ``state``: the (possibly empty) successor set."""

    def observe(self, state: Any) -> Any:
        return state

    def denote(self, ops: Sequence[Op]) -> FrozenSet[Any]:
        states = self.initial_states()
        for op in ops:
            states = frozenset(s2 for s in states for s2 in self.apply_set(s, op))
            if not states:
                return frozenset()
        return states

    def allowed(self, ops: Sequence[Op]) -> bool:
        return bool(self.denote(ops))

    def result(self, ops: Sequence[Op], method: str, args: Tuple[Any, ...]) -> Any:
        raise SpecError(
            "NondetSpec cannot synthesise return values generically; "
            "override result() in the concrete specification"
        )

    def commutes(self, op1: Op, op2: Op) -> bool:
        raise SpecError(
            f"{type(self).__name__} must override commutes() (no generic "
            "decision procedure for relational specs)"
        )


class MemoizedMovers:
    """Memoising wrapper for a spec's mover oracles.

    Mover relations are functions of operation *payloads* (method, args,
    ret), not ids, so results are cached on payload-class pairs (the
    interned small-int ids of :func:`repro.core.ops.payload_class_id`).
    Machine criteria check movers against every concurrent operation,
    making this cache the difference between O(n) and O(n·cost-of-oracle)
    per step.

    One instance is intended to be shared per *spec* (see
    :func:`shared_movers`) so the machine criteria, the §5.3 invariant
    checkers and the bounded precongruence checkers all consult the same
    memo instead of re-deriving the relations per consumer.

    With an enabled tracer, cache hits/misses are aggregated as cheap
    counts (``mover.left.hit``/``.miss``, ``mover.commutes.hit``/``.miss``)
    and each actual oracle evaluation (a miss) becomes a ``mover`` span —
    oracle cost is a dominant machine expense, and this is where it
    becomes visible.
    """

    def __init__(self, spec: SequentialSpec, tracer: Tracer = NULL_TRACER):
        self.spec = spec
        self.tracer = tracer
        self._left: dict = {}
        self._comm: dict = {}

    def left_mover(self, op1: Op, op2: Op) -> bool:
        key = (payload_class_id(op1), payload_class_id(op2))
        if key in self._left:
            if self.tracer.enabled:
                self.tracer.count("mover.left.hit")
            return self._left[key]
        if not self.tracer.enabled:
            result = self._left[key] = self.spec.left_mover(op1, op2)
            return result
        self.tracer.count("mover.left.miss")
        start = self.tracer.now()
        result = self._left[key] = self.spec.left_mover(op1, op2)
        self.tracer.span(
            "left_mover",
            CAT_MOVER,
            start,
            args={"op1": op1.method, "op2": op2.method, "result": result},
        )
        return result

    def right_mover(self, op1: Op, op2: Op) -> bool:
        return self.left_mover(op2, op1)

    def left_mover_pid(self, pid1: int, pid2: int) -> bool:
        """``left_mover`` keyed directly on interned payload-class ids —
        the packed rule predicates scan integer columns and never hold an
        :class:`Op`; probe records are reconstructed from the intern table
        only on a memo miss."""
        got = self._left.get((pid1, pid2))
        if got is not None:
            if self.tracer.enabled:
                self.tracer.count("mover.left.hit")
            return got
        m1, a1, r1 = payload_of(pid1)
        m2, a2, r2 = payload_of(pid2)
        return self.left_mover(Op(m1, a1, r1, -1), Op(m2, a2, r2, -2))

    def commutes_pid(self, pid1: int, pid2: int) -> bool:
        """``commutes`` keyed directly on interned payload-class ids (see
        :meth:`left_mover_pid`)."""
        key = (pid1, pid2) if pid1 <= pid2 else (pid2, pid1)
        got = self._comm.get(key)
        if got is not None:
            if self.tracer.enabled:
                self.tracer.count("mover.commutes.hit")
            return got
        m1, a1, r1 = payload_of(pid1)
        m2, a2, r2 = payload_of(pid2)
        return self.commutes(Op(m1, a1, r1, -1), Op(m2, a2, r2, -2))

    def commutes(self, op1: Op, op2: Op) -> bool:
        pid1, pid2 = payload_class_id(op1), payload_class_id(op2)
        key = (pid1, pid2) if pid1 <= pid2 else (pid2, pid1)
        if key in self._comm:
            if self.tracer.enabled:
                self.tracer.count("mover.commutes.hit")
            return self._comm[key]
        if not self.tracer.enabled:
            result = self._comm[key] = self.spec.commutes(op1, op2)
            return result
        self.tracer.count("mover.commutes.miss")
        start = self.tracer.now()
        result = self._comm[key] = self.spec.commutes(op1, op2)
        self.tracer.span(
            "commutes",
            CAT_MOVER,
            start,
            args={"op1": op1.method, "op2": op2.method, "result": result},
        )
        return result


# ---------------------------------------------------------------------------
# Cached denotations ``[[ℓ]]`` (the incremental kernel's parent-state cache)
# ---------------------------------------------------------------------------

#: cache sentinel for "this log is disallowed" (``[[ℓ]] = ∅``); distinct
#: from ``None`` so a legitimately-``None`` spec state can be cached.
_DISALLOWED = object()
_ABSENT = object()


class SpecDenotations:
    """Uncached pass-through denotation interface.

    The machine and the checkers talk to a *denotations* object with the
    surface ``allowed``/``allows``/``result``; this base simply delegates
    to the spec.  :class:`DenotationCache` (deterministic specs) and
    :class:`NondetDenotationCache` (relational specs) override with
    parent-state caching — :func:`denotations_for` picks the right one.
    """

    caching = False

    def __init__(self, spec: SequentialSpec, tracer: Tracer = NULL_TRACER):
        self.spec = spec
        self.tracer = tracer

    def allowed(self, ops: Sequence[Op]) -> bool:
        return self.spec.allowed(ops)

    def allows(self, ops: Sequence[Op], op: Op) -> bool:
        return self.spec.allows(ops, op)

    def result(self, ops: Sequence[Op], method: str, args: Tuple[Any, ...]) -> Any:
        return self.spec.result(ops, method, args)

    # -- log-keyed variants --------------------------------------------------
    #
    # The machine holds persistent log nodes that carry their own cached
    # payload key (``LocalLog.payload_key``); these entry points let caching
    # subclasses reuse that key instead of rebuilding it per query.  The
    # base class just unwraps to the ops-based surface.

    def allowed_log(self, log) -> bool:
        return self.allowed(log.all_ops())

    def allows_log(self, log, op: Op) -> bool:
        return self.allows(log.all_ops(), op)

    def allows_pid(self, log, pid: int) -> bool:
        """``allows_log`` keyed on an interned payload-class id — the
        packed rule predicates' entry point (no probe :class:`Op` needed
        by caching subclasses; this base reconstructs one)."""
        method, args, ret = payload_of(pid)
        return self.allows(log.all_ops(), Op(method, args, ret, -1))

    def result_log(self, log, method: str, args: Tuple[Any, ...]) -> Any:
        return self.result(log.all_ops(), method, args)

    def cache_info(self) -> dict:
        return {"entries": 0, "caching": False}

    def clear(self) -> None:
        pass


#: per-process source of denotation-cache tokens.  Each cache instance
#: gets a distinct small int and keys its per-log-node slots with it, so
#: slots of different caches (e.g. before/after a runtime log compaction
#: rebased the spec) can never alias — unlike ``id()``-based keys, which
#: the allocator may reuse after a cache is collected.
_CACHE_TOKENS = itertools.count()


class DenotationCache(SpecDenotations):
    """Parent-state caching of ``[[ℓ]]`` for deterministic specs.

    The denotation of a log depends only on its operation *payload*
    sequence, so states are cached on tuples of payload-class ids.  A
    query for ``ℓ·op`` walks back to the nearest cached prefix of ``ℓ``
    and applies only the missing suffix — for the machine's access
    pattern (one appended operation per step, criteria re-queried per
    probe) this turns every ``allowed``/``allows``/``result``/``≼`` check
    into a dictionary hit plus at most one ``[[op]]`` application, instead
    of a full replay from the initial state.

    Cache hits/misses are aggregated on the tracer as ``denot.hit`` /
    ``denot.miss`` (one miss per actual ``[[op]]`` application), the
    counters the kernel benchmark and the CI smoke job assert on.
    """

    caching = True

    #: clear the cache wholesale past this many cached states — a blunt
    #: but effective bound for unbounded runtime histories; model-checker
    #: scopes stay far below it.
    max_entries = 1 << 20

    def __init__(self, spec: StateSpec, tracer: Tracer = NULL_TRACER):
        super().__init__(spec, tracer)
        self._states: dict = {(): spec.initial_state()}
        # Per-log-node slot keys (see _CACHE_TOKENS).  The slot values are
        # pure functions of the log's payload sequence and the spec, so
        # clear() need not invalidate them — they stay correct, they just
        # stop being backed by ``_states``.
        token = next(_CACHE_TOKENS)
        self._slot = ("den", token)
        self._token = token

    # -- the core lookup ---------------------------------------------------

    def state_of(self, ops: Sequence[Op]) -> Any:
        """``[[ℓ]]`` as a cached state, or :data:`_DISALLOWED`."""
        key = tuple(payload_class_id(op) for op in ops)
        states = self._states
        state = states.get(key, _ABSENT)
        if state is not _ABSENT:
            if self.tracer.enabled:
                self.tracer.count("denot.hit")
            return state
        return self._fill(ops, key)

    def _fill(self, ops: Sequence[Op], key: Tuple[int, ...]) -> Any:
        """Miss path: walk back to the nearest cached prefix of ``key`` and
        apply the missing suffix of ``ops``."""
        states = self._states
        if len(states) > self.max_entries:
            self.clear()
            states = self._states
        # Walk back to the nearest cached prefix (length ``plen``; the
        # empty prefix is always seeded, so the walk always lands)…
        plen = len(key) - 1
        while plen > 0:
            state = states.get(key[:plen], _ABSENT)
            if state is not _ABSENT:
                break
            plen -= 1
        else:
            state = states[()]
        # …then apply only the missing suffix, caching every new prefix.
        tracing = self.tracer.enabled
        spec = self.spec
        for position in range(plen, len(key)):
            if state is not _DISALLOWED:
                state = spec.apply(state, ops[position])
                if state is None:
                    state = _DISALLOWED
            states[key[: position + 1]] = state
            if tracing:
                self.tracer.count("denot.miss")
        return state

    def state_of_log(self, log) -> Any:
        """``[[ℓ]]`` keyed by the log node's cached payload key, with the
        resolved state stored in a per-cache slot *on the log node* — on
        revisits (the overwhelmingly common case: criteria re-probe the
        same immutable logs across states) the lookup is one dict hit with
        no payload-key tuple hash at all."""
        proj = log._proj
        if proj is None:
            proj = log._proj = {}
        slot = self._slot
        state = proj.get(slot, _ABSENT)
        if state is not _ABSENT:
            if self.tracer.enabled:
                self.tracer.count("denot.hit")
            return state
        key = log.payload_key()
        state = self._states.get(key, _ABSENT)
        if state is _ABSENT:
            state = self._fill(log.all_ops(), key)
        elif self.tracer.enabled:
            self.tracer.count("denot.hit")
        proj[slot] = state
        return state

    # -- the spec surface, from cached states ------------------------------

    def allowed(self, ops: Sequence[Op]) -> bool:
        return self.state_of(ops) is not _DISALLOWED

    def allows(self, ops: Sequence[Op], op: Op) -> bool:
        return self.state_of(tuple(ops) + (op,)) is not _DISALLOWED

    def allowed_log(self, log) -> bool:
        return self.state_of_log(log) is not _DISALLOWED

    def allows_log(self, log, op: Op) -> bool:
        return self.allows_pid(log, payload_class_id(op))

    def allows_pid(self, log, pid: int) -> bool:
        proj = log._proj
        if proj is None:
            proj = log._proj = {}
        akey = (self._token, pid)
        got = proj.get(akey)
        if got is not None:
            if self.tracer.enabled:
                self.tracer.count("denot.hit")
            return got is True
        key = log.payload_key() + (pid,)
        state = self._states.get(key, _ABSENT)
        if state is _ABSENT:
            method, args, ret = payload_of(pid)
            state = self._fill(log.all_ops() + (Op(method, args, ret, -1),), key)
        elif self.tracer.enabled:
            self.tracer.count("denot.hit")
        result = state is not _DISALLOWED
        proj[akey] = result
        return result

    def result(self, ops: Sequence[Op], method: str, args: Tuple[Any, ...]) -> Any:
        state = self.state_of(ops)
        if state is _DISALLOWED:
            raise SpecError("result() called on a disallowed log")
        ret, _ = self.spec.perform(state, method, args)
        return ret

    def result_log(self, log, method: str, args: Tuple[Any, ...]) -> Any:
        proj = log._proj
        if proj is None:
            proj = log._proj = {}
        rkey = ("res", self._token, method, args)
        got = proj.get(rkey, _ABSENT)
        if got is not _ABSENT:
            if got is _DISALLOWED:
                raise SpecError("result() called on a disallowed log")
            return got
        state = self.state_of_log(log)
        if state is _DISALLOWED:
            proj[rkey] = _DISALLOWED
            raise SpecError("result() called on a disallowed log")
        ret, _ = self.spec.perform(state, method, args)
        proj[rkey] = ret
        return ret

    def precongruent(self, l1: Sequence[Op], l2: Sequence[Op]) -> bool:
        """Exact ``ℓ1 ≼ ℓ2`` from cached states — same decision procedure
        as :meth:`StateSpec.precongruent`, minus the replays."""
        s1 = self.state_of(l1)
        if s1 is _DISALLOWED:
            return True
        s2 = self.state_of(l2)
        if s2 is _DISALLOWED:
            return False
        return self.spec.observe(s1) == self.spec.observe(s2)

    def cache_info(self) -> dict:
        return {"entries": len(self._states), "caching": True}

    def clear(self) -> None:
        self._states = {(): self.spec.initial_state()}


class NondetDenotationCache(SpecDenotations):
    """Parent-set caching of ``[[ℓ]]`` for relational specs: the cached
    value is the (frozen) forward-image state set; ``allowed`` is its
    non-emptiness.  ``result`` stays delegated — relational specs override
    it per concrete type."""

    caching = True

    max_entries = 1 << 20

    def __init__(self, spec: NondetSpec, tracer: Tracer = NULL_TRACER):
        super().__init__(spec, tracer)
        self._states: dict = {(): frozenset(spec.initial_states())}
        token = next(_CACHE_TOKENS)
        self._slot = ("den", token)
        self._token = token

    def denote(self, ops: Sequence[Op]) -> FrozenSet[Any]:
        key = tuple(payload_class_id(op) for op in ops)
        states = self._states
        found = states.get(key, _ABSENT)
        if found is not _ABSENT:
            if self.tracer.enabled:
                self.tracer.count("denot.hit")
            return found
        return self._fill(ops, key)

    def denote_log(self, log) -> FrozenSet[Any]:
        proj = log._proj
        if proj is None:
            proj = log._proj = {}
        slot = self._slot
        found = proj.get(slot, _ABSENT)
        if found is not _ABSENT:
            if self.tracer.enabled:
                self.tracer.count("denot.hit")
            return found
        key = log.payload_key()
        found = self._states.get(key, _ABSENT)
        if found is _ABSENT:
            found = self._fill(log.all_ops(), key)
        elif self.tracer.enabled:
            self.tracer.count("denot.hit")
        proj[slot] = found
        return found

    def _fill(self, ops: Sequence[Op], key: Tuple[int, ...]) -> FrozenSet[Any]:
        states = self._states
        if len(states) > self.max_entries:
            self.clear()
            states = self._states
        plen = len(key) - 1
        while plen > 0:
            found = states.get(key[:plen], _ABSENT)
            if found is not _ABSENT:
                break
            plen -= 1
        else:
            found = states[()]
        tracing = self.tracer.enabled
        spec = self.spec
        for position in range(plen, len(key)):
            op = ops[position]
            if found:
                found = frozenset(
                    s2 for s in found for s2 in spec.apply_set(s, op)
                )
            states[key[: position + 1]] = found
            if tracing:
                self.tracer.count("denot.miss")
        return found

    def allowed(self, ops: Sequence[Op]) -> bool:
        return bool(self.denote(ops))

    def allows(self, ops: Sequence[Op], op: Op) -> bool:
        return bool(self.denote(tuple(ops) + (op,)))

    def allowed_log(self, log) -> bool:
        return bool(self.denote_log(log))

    def allows_log(self, log, op: Op) -> bool:
        return self.allows_pid(log, payload_class_id(op))

    def allows_pid(self, log, pid: int) -> bool:
        proj = log._proj
        if proj is None:
            proj = log._proj = {}
        akey = (self._token, pid)
        got = proj.get(akey)
        if got is not None:
            if self.tracer.enabled:
                self.tracer.count("denot.hit")
            return got is True
        key = log.payload_key() + (pid,)
        found = self._states.get(key, _ABSENT)
        if found is _ABSENT:
            method, args, ret = payload_of(pid)
            found = self._fill(log.all_ops() + (Op(method, args, ret, -1),), key)
        elif self.tracer.enabled:
            self.tracer.count("denot.hit")
        result = bool(found)
        proj[akey] = result
        return result

    def cache_info(self) -> dict:
        return {"entries": len(self._states), "caching": True}

    def clear(self) -> None:
        self._states = {(): frozenset(self.spec.initial_states())}


def denotations_for(
    spec: SequentialSpec, tracer: Tracer = NULL_TRACER
) -> SpecDenotations:
    """The right denotations implementation for ``spec``."""
    if isinstance(spec, StateSpec):
        return DenotationCache(spec, tracer)
    if isinstance(spec, NondetSpec):
        return NondetDenotationCache(spec, tracer)
    return SpecDenotations(spec, tracer)


# ---------------------------------------------------------------------------
# Shared per-spec memo registry
# ---------------------------------------------------------------------------

_SHARED_MOVERS: "WeakKeyDictionary" = WeakKeyDictionary()
_SHARED_DENOTS: "WeakKeyDictionary" = WeakKeyDictionary()


def _adopt_tracer(memo, tracer: Tracer):
    """Late-bind an enabled tracer onto an existing shared memo (first
    consumer may have been untraced)."""
    if tracer.enabled and not memo.tracer.enabled:
        memo.tracer = tracer
    return memo


def shared_movers(spec: SequentialSpec, tracer: Tracer = NULL_TRACER) -> MemoizedMovers:
    """The per-spec shared :class:`MemoizedMovers` memo.

    Mover relations depend only on the spec, so one memo per spec instance
    serves every machine, invariant checker and bounded checker touching
    it.  Held weakly: the memo dies with its spec.
    """
    memo = _SHARED_MOVERS.get(spec)
    if memo is None:
        memo = _SHARED_MOVERS[spec] = MemoizedMovers(spec, tracer=tracer)
        return memo
    return _adopt_tracer(memo, tracer)


def shared_denotations(
    spec: SequentialSpec, tracer: Tracer = NULL_TRACER
) -> SpecDenotations:
    """The per-spec shared denotations cache (see :func:`denotations_for`)."""
    memo = _SHARED_DENOTS.get(spec)
    if memo is None:
        memo = _SHARED_DENOTS[spec] = denotations_for(spec, tracer)
        return memo
    return _adopt_tracer(memo, tracer)
