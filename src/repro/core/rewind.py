"""Partial rewind relations and the commit-preservation invariant (§5.4).

The commit-preservation invariant ``cmtpres`` is the heart of the paper's
simulation proof.  It must be *closed under rewinding* because the machine
is non-monotonic (UNAPP/UNPUSH/UNPULL move backwards), which the paper
handles with two auxiliary relations:

* the **self-rewind** ``{c,σ,L}, G ⟲self {'c,'σ,'L}, 'G`` (Definition 5.1)
  peels the thread's local log from the right — undoing unpushed entries
  (PRU), pushed-uncommitted entries together with their global-log record
  (PRM), skipping over pulled entries — and is reflexive;
* the **shared-log rewind** ``G ⟲L ''G`` drops any subset of *other*
  transactions' uncommitted operations from ``G``.

Both are enumerable on concrete states, so :func:`check_cmtpres` can test
Definition 5.2 directly (with the big-step runs bounded by ``fuel``): after
any drop of others' uncommitted work and any partial self-rewind, if the
rewound transaction could commit its pushed prefix and then finish
atomically, the resulting log is precongruence-covered by atomically
re-running the *whole* transaction from a log without any of its effects.

These checks are exponential in the number of uncommitted operations and
are meant for the model checker's small scopes (where they are exact).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.atomic import bigstep, payloads
from repro.core.logs import GlobalLog, LocalLog, NotPushed, Pulled, Pushed
from repro.core.machine import Machine, Thread
from repro.core.ops import IdGenerator, Op
from repro.core.precongruence import precongruent


def self_rewinds(
    thread: Thread, global_log: GlobalLog
) -> Iterator[Tuple[Thread, GlobalLog]]:
    """Enumerate ``⟲self`` (Definition 5.1): all partial rewinds of
    ``thread`` against ``global_log``, including the reflexive one (PRR).

    The relation peels local-log entries from the right:

    * PRU — last entry ``npshd 'c``: drop it, restore saved code/stack;
    * PRM — last entry ``pshd 'c`` whose global record is ``gUCmt``: drop
      both, restore saved code/stack;
    * pulled entries are passed over (dropped without code change).
    """
    yield thread, global_log  # PRR (reflexive)
    local = thread.local
    if len(local) == 0:
        return
    last = local[-1]
    if isinstance(last.flag, NotPushed):
        rewound = Thread(
            thread.tid,
            last.flag.saved_code,
            last.flag.saved_stack,
            local.drop_last(),
            thread.original_code,
            thread.original_stack,
        )
        yield from self_rewinds(rewound, global_log)
    elif isinstance(last.flag, Pushed):
        entry = global_log.entry_for(last.op)
        if entry is not None and not entry.is_committed:
            rewound = Thread(
                thread.tid,
                last.flag.saved_code,
                last.flag.saved_stack,
                local.drop_last(),
                thread.original_code,
                thread.original_stack,
            )
            yield from self_rewinds(rewound, global_log.remove(last.op))
    elif isinstance(last.flag, Pulled):
        rewound = Thread(
            thread.tid,
            thread.code,
            thread.stack,
            local.drop_last(),
            thread.original_code,
            thread.original_stack,
        )
        yield from self_rewinds(rewound, global_log)


def shared_rewinds(
    global_log: GlobalLog,
    local: LocalLog,
    spec=None,
    limit: Optional[int] = None,
) -> Iterator[GlobalLog]:
    """Enumerate ``⟲L``: drop any subset of uncommitted operations that are
    not in ``local`` (other transactions' tentative work).

    When ``spec`` is given, drops that leave a *disallowed* shared log are
    pruned.  The literal relation in the paper admits such junk logs (drop
    a write but keep a read depending on it); no machine execution can
    reach them — the owner's rollback must UNPUSH the dependent operation
    first, and UNPUSH criterion (ii) enforces it — and Lemma 5.15 (the
    ``I_⊆`` invariant) frames the rewinds as transitions of the machine
    itself, so the transition-reachable (allowed) drops are the intended
    quantification domain.  ``limit`` caps the droppable set.
    """
    local_ids = local.ids()
    droppable = [
        e.op
        for e in global_log
        if not e.is_committed and e.op.op_id not in local_ids
    ]
    if limit is not None:
        droppable = droppable[:limit]
    for r in range(len(droppable) + 1):
        for subset in combinations(droppable, r):
            candidate = global_log.minus(subset)
            if spec is not None and not spec.allowed(candidate.all_ops()):
                continue
            yield candidate


def otx(thread: Thread) -> Tuple:
    """``otx``: the transaction rewound to its original code and stack.

    As in the paper, the rewind target is recovered from the codes saved
    in the local log: the earliest *own* entry's ``npshd c``/``pshd c``
    flag recorded the code active when the transaction first APPlied, so
    its saved code/stack is the transaction's start.  A thread with no own
    entries (nothing applied, or already committed — ``L = []``) rewinds
    to its current code: ``otx({c, σ, []}) = (c, σ)``, which is what the
    CMT case of Lemma 5.16 relies on.
    """
    for entry in thread.local:
        flag = entry.flag
        if isinstance(flag, (NotPushed, Pushed)):
            return flag.saved_code, flag.saved_stack
    return thread.code, thread.stack


def check_cmtpres(
    machine: Machine,
    thread: Thread,
    fuel: int = 8,
    drop_limit: Optional[int] = None,
) -> List[str]:
    """Empirically check Definition 5.2 for ``thread`` in ``machine``.

    For every shared rewind ``''G`` (line 0) and self-rewind
    ``{'c,'σ,'L}, 'G`` (line 1): flip the rewound transaction's pushed
    operations to committed (``G_post``, line 2); for every atomic
    completion ``ℓ_a`` of the remaining code from
    ``G_post · ⌊'L⌋_npshd`` (line 3), some atomic run ``ℓ_b`` of the whole
    transaction from ``'G ∖ own('L)`` must cover it: ``ℓ_a ≼ ℓ_b``
    (line 4).

    Returns a list of violation descriptions (empty ⇒ invariant holds).
    """
    spec = machine.spec
    violations: List[str] = []
    ids = IdGenerator(start=10_000_000)
    for dropped in shared_rewinds(
        machine.global_log, thread.local, spec=spec, limit=drop_limit
    ):
        for r_thread, r_global in self_rewinds(thread, dropped):
            try:
                g_post = r_global.commit(r_thread.local)
            except Exception:  # pragma: no cover - I_LG violations surface elsewhere
                violations.append(
                    f"cmtpres: cmt() failed after rewind of thread {thread.tid}"
                )
                continue
            base_a = g_post.all_ops() + r_thread.local.not_pushed_ops()
            original_code, _ = otx(r_thread)
            base_b = tuple(
                op
                for op in r_global.minus(r_thread.local.own_ops()).all_ops()
            )
            completions_b = [
                base_b + suffix
                for suffix in bigstep(spec, original_code, base_b, ids, fuel)
            ]
            for suffix_a in bigstep(spec, r_thread.code, base_a, ids, fuel):
                l_a = base_a + suffix_a
                if not spec.allowed(l_a):
                    # A disallowed completion carries no observable content
                    # under ≼ (its first clause is vacuous); only allowed
                    # completions constrain the atomic side.
                    continue
                if not any(
                    precongruent(spec, l_a, l_b) for l_b in completions_b
                ):
                    violations.append(
                        "cmtpres: completion "
                        f"{payloads(l_a)} of thread {thread.tid} not covered "
                        "by any atomic re-run"
                    )
    return violations


def check_cmtpres_all(machine: Machine, fuel: int = 8) -> List[str]:
    """``cmtpres`` for every thread of ``machine``."""
    violations: List[str] = []
    for thread in machine.threads:
        violations.extend(check_cmtpres(machine, thread, fuel))
    return violations
