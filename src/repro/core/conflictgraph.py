"""Conflict-graph serializability (Papadimitriou [29] — the paper's
serializability reference), as a scalable checker.

The permutation search of :mod:`repro.core.serializability` is exact but
exponential; the classical sufficient condition is *conflict
serializability*: build the directed graph whose nodes are committed
transactions, with an edge ``T1 → T2`` whenever some operation of ``T1``
precedes a non-commuting operation of ``T2`` in the global log.  If the
graph is acyclic, every topological order is a serial witness.

Here "non-commuting" is the specification's mover relation, so this is
conflict serializability at the *abstract* level — e.g. two bank deposits
to the same account create no edge, exactly the coarse-grained-
transactions refinement the paper's line of work advocates.  (Cycles do
not prove non-serializability — view serializability is strictly larger —
so the harness escalates cyclic cases to the exact checker.)
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.history import History
from repro.core.machine import Machine
from repro.core.ops import Op
from repro.core.spec import MemoizedMovers, SequentialSpec


class ConflictGraph:
    """The precedence graph over committed transactions."""

    def __init__(self) -> None:
        self.nodes: Set[int] = set()
        self.edges: Dict[int, Set[int]] = {}
        self.edge_reasons: Dict[Tuple[int, int], Tuple[Op, Op]] = {}

    def add_node(self, node: int) -> None:
        self.nodes.add(node)
        self.edges.setdefault(node, set())

    def add_edge(self, src: int, dst: int, reason: Tuple[Op, Op]) -> None:
        self.add_node(src)
        self.add_node(dst)
        if dst not in self.edges[src]:
            self.edges[src].add(dst)
            self.edge_reasons[(src, dst)] = reason

    def topological_order(self) -> Optional[List[int]]:
        """A topological order, or ``None`` if the graph has a cycle."""
        in_degree = {node: 0 for node in self.nodes}
        for src, dsts in self.edges.items():
            for dst in dsts:
                in_degree[dst] += 1
        frontier = sorted(n for n, d in in_degree.items() if d == 0)
        order: List[int] = []
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for dst in sorted(self.edges.get(node, ())):
                in_degree[dst] -= 1
                if in_degree[dst] == 0:
                    frontier.append(dst)
        if len(order) != len(self.nodes):
            return None
        return order

    def cycle_witness(self) -> Optional[List[int]]:
        """Some cycle (as a node list), or ``None`` if acyclic.

        Iterative DFS with an explicit stack: the graphs built from the
        benchmark scopes can have thousands of transactions, and a
        recursive walk (one Python frame per node on a long chain) hits
        the interpreter's recursion limit long before memory matters.
        Visits nodes and edges in sorted order, so the witness is the same
        cycle the previous recursive implementation reported."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in self.nodes}
        parent: Dict[int, Optional[int]] = {}

        for root in sorted(self.nodes):
            if color[root] != WHITE:
                continue
            color[root] = GRAY
            # Each stack slot is (node, iterator over its sorted successors);
            # pushing a slot == entering the recursive call.
            stack: List[Tuple[int, Iterator[int]]] = [
                (root, iter(sorted(self.edges.get(root, ()))))
            ]
            while stack:
                node, successors = stack[-1]
                advanced = False
                for nxt in successors:
                    if color[nxt] == GRAY:
                        cycle = [nxt, node]
                        cursor = parent.get(node)
                        while cursor is not None and cursor != nxt:
                            cycle.append(cursor)
                            cursor = parent.get(cursor)
                        cycle.reverse()
                        return cycle
                    if color[nxt] == WHITE:
                        parent[nxt] = node
                        color[nxt] = GRAY
                        stack.append(
                            (nxt, iter(sorted(self.edges.get(nxt, ()))))
                        )
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None


def build_conflict_graph(
    spec: SequentialSpec,
    tx_of_op: Dict[int, int],
    global_ops: Sequence[Op],
    movers: Optional[MemoizedMovers] = None,
) -> ConflictGraph:
    """Precedence edges from global-log order and non-commutation.

    ``tx_of_op`` maps operation ids to transaction identifiers;
    operations without an entry (e.g. of uncommitted transactions) are
    skipped.
    """
    movers = movers or MemoizedMovers(spec)
    graph = ConflictGraph()
    for tx_id in set(tx_of_op.values()):
        graph.add_node(tx_id)
    indexed = [
        (op, tx_of_op[op.op_id])
        for op in global_ops
        if op.op_id in tx_of_op
    ]
    for i, (op1, tx1) in enumerate(indexed):
        for op2, tx2 in indexed[i + 1 :]:
            if tx1 == tx2:
                continue
            if not movers.commutes(op1, op2):
                graph.add_edge(tx1, tx2, (op1, op2))
    return graph


def conflict_serializable(
    spec: SequentialSpec,
    history: History,
    machine: Machine,
) -> Tuple[bool, Optional[List[int]], ConflictGraph]:
    """Conflict-serializability of a recorded run.

    Returns ``(verdict, witness_order, graph)``: on success the witness is
    a topological order of committed ``tx_id``s; on failure (a cycle) the
    verdict is ``False`` and callers should escalate to the exact checker
    (conflict serializability is sufficient, not necessary).
    """
    tx_of_op: Dict[int, int] = {}
    for record in history.committed_records():
        for op in record.ops:
            tx_of_op[op.op_id] = record.tx_id
    graph = build_conflict_graph(
        spec, tx_of_op, machine.global_log.committed_ops(),
        getattr(machine, "movers", None),
    )
    order = graph.topological_order()
    return order is not None, order, graph
