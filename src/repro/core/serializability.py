"""Serializability checking (Theorem 5.17, made empirical).

The paper proves every PUSH/PULL execution serializable by simulation with
the atomic machine: the relation ``T, G ∼ A, ℓ`` demands
``⌊G⌋_gCmt ≼ ℓ`` for an atomic log ``ℓ``.  This module provides the
run-time side of that statement:

* :func:`find_serialization` — given the committed transactions of a run
  (with their recorded operations) and the machine's committed global log,
  find a *serial* order of the transactions whose concatenation is allowed
  by the specification and covers the committed log under ``≼``.  The
  search tries the commit order first (every algorithm in §6 serialises in
  commit order), then falls back to exhaustive permutation for small
  histories — optionally restricted to orders consistent with real-time
  precedence (strict serializability).
* :func:`assert_serializable` — raise
  :class:`~repro.core.errors.SerializabilityViolation` when no witness
  exists (on machine-driven runs this indicates a bug: Theorem 5.17 says
  it cannot happen).
* :func:`atomic_cover_exists` — the model checker's stronger form: the
  committed payload log must be covered by an actual atomic-machine
  execution of the original thread programs (the literal right-hand side
  of the simulation).
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.atomic import atomic_final_logs, payloads
from repro.core.errors import SerializabilityViolation
from repro.core.history import History, TxRecord
from repro.core.language import Code
from repro.core.machine import Machine
from repro.core.ops import Op
from repro.core.precongruence import precongruent
from repro.core.spec import SequentialSpec

MAX_EXHAUSTIVE = 7


class SerializationResult:
    """Outcome of a serialization search."""

    def __init__(
        self,
        order: Optional[Tuple[int, ...]],
        exhaustive: bool,
        candidates_tried: int,
    ):
        self.order = order
        self.exhaustive = exhaustive
        self.candidates_tried = candidates_tried

    @property
    def serializable(self) -> bool:
        return self.order is not None

    @property
    def conclusive(self) -> bool:
        """A negative answer is conclusive only if the search was
        exhaustive."""
        return self.serializable or self.exhaustive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SerializationResult(order={self.order}, "
            f"exhaustive={self.exhaustive}, tried={self.candidates_tried})"
        )


def _order_ok(
    spec: SequentialSpec,
    tx_ops: Sequence[Tuple[Op, ...]],
    order: Sequence[int],
    committed_log: Tuple[Op, ...],
) -> bool:
    candidate: List[Op] = []
    for index in order:
        candidate.extend(tx_ops[index])
    return spec.allowed(tuple(candidate)) and precongruent(
        spec, committed_log, tuple(candidate)
    )


def find_serialization(
    spec: SequentialSpec,
    tx_ops: Sequence[Tuple[Op, ...]],
    committed_log: Tuple[Op, ...],
    real_time: Optional[Iterable[Tuple[int, int]]] = None,
    max_exhaustive: int = MAX_EXHAUSTIVE,
) -> SerializationResult:
    """Search for a serial witness order over ``tx_ops``.

    ``tx_ops[i]`` is the i-th committed transaction's own-operation
    sequence (in local-log order); ``committed_log`` is ``⌊G⌋_gCmt``.
    ``real_time`` optionally supplies precedence pairs ``(i, j)`` meaning
    "i must precede j" (strict serializability).
    """
    n = len(tx_ops)
    constraints = tuple(real_time or ())
    tried = 0

    def respects(order: Sequence[int]) -> bool:
        position = {index: pos for pos, index in enumerate(order)}
        return all(position[a] < position[b] for a, b in constraints)

    identity = tuple(range(n))
    if respects(identity):
        tried += 1
        if _order_ok(spec, tx_ops, identity, committed_log):
            return SerializationResult(identity, exhaustive=False, candidates_tried=tried)

    if n <= max_exhaustive:
        for order in permutations(range(n)):
            if order == identity or not respects(order):
                continue
            tried += 1
            if _order_ok(spec, tx_ops, order, committed_log):
                return SerializationResult(order, exhaustive=True, candidates_tried=tried)
        return SerializationResult(None, exhaustive=True, candidates_tried=tried)
    return SerializationResult(None, exhaustive=False, candidates_tried=tried)


def check_history(
    spec: SequentialSpec,
    history: History,
    machine: Machine,
    strict: bool = True,
    max_exhaustive: int = MAX_EXHAUSTIVE,
) -> SerializationResult:
    """Check a driver run: committed transactions from ``history`` against
    the machine's final committed global log."""
    # Order candidates by commit time: every §6 algorithm serialises in
    # commit order, so the identity try usually succeeds immediately.
    committed = sorted(
        history.committed_records(), key=lambda record: record.end_time
    )
    tx_ops = [record.ops for record in committed]
    committed_log = machine.global_log.committed_ops()
    real_time = None
    if strict:
        index_of = {record.tx_id: i for i, record in enumerate(committed)}
        real_time = [
            (index_of[a], index_of[b])
            for a, b in history.real_time_pairs()
            if a in index_of and b in index_of
        ]
    return find_serialization(
        spec, tx_ops, committed_log, real_time, max_exhaustive
    )


def assert_serializable(
    spec: SequentialSpec,
    history: History,
    machine: Machine,
    strict: bool = True,
) -> SerializationResult:
    """As :func:`check_history`, raising on a conclusive negative."""
    result = check_history(spec, history, machine, strict=strict)
    if not result.serializable and result.exhaustive:
        raise SerializabilityViolation(
            f"no serial witness among {result.candidates_tried} orders for "
            f"{history.commit_count()} committed transactions"
        )
    return result


def atomic_cover_exists(
    spec: SequentialSpec,
    programs: Sequence[Code],
    committed_ops: Tuple[Op, ...],
    fuel: int = 16,
) -> bool:
    """The simulation right-hand side, literally: does some atomic-machine
    execution of ``programs`` produce a log ``ℓ`` with
    ``committed_ops ≼ ℓ``?

    The atomic machine re-executes programs (fresh ids), so coverage is
    checked per candidate with the precongruence on the concrete op lists:
    for deterministic specs this compares replayed final states, which is
    id-insensitive.
    """
    from repro.core.ops import IdGenerator, Op as _Op

    candidates = atomic_final_logs(spec, programs, fuel=fuel)
    ids = IdGenerator(start=20_000_000)
    for payload_log in candidates:
        candidate_ops = tuple(
            _Op(method, args, ret, ids.fresh()) for method, args, ret in payload_log
        )
        if spec.allowed(candidate_ops) and precongruent(
            spec, committed_ops, candidate_ops
        ):
            return True
    return False
