"""The PUSH/PULL machine (§4, Figures 4–6).

Machine states are pairs ``T, G`` of a thread list and a global log.  Each
thread ``{c, σ, L}`` carries its remaining transaction body ``c``, a local
stack ``σ`` and a local log ``L``.  The seven rules of Figure 5 —

=========  ==================================================================
APP        speculatively apply a next method locally (``npshd``)
UNAPP      rewind the last unpushed local operation
PUSH       publish an unpushed operation to the global log (``gUCmt``)
UNPUSH     withdraw a pushed-but-uncommitted operation from the global log
PULL       import another transaction's published operation (``pld``)
UNPULL     discard a pulled operation (detangle)
CMT        atomically flip all own pushed operations to ``gCmt``
=========  ==================================================================

— are methods on :class:`Machine` that return the successor state.  Every
side-condition of Figure 5 is checked and failures raise
:class:`~repro.core.errors.CriterionViolation` with the rule name and the
paper's criterion numeral.  Criteria typeset in gray in the paper (not
strictly necessary for serializability) are checked when
``check_gray_criteria`` is set (the default), and skipped otherwise.

Machine states are immutable: steps construct new states, so histories of
states can be retained, hashed (model checker) and rewound (§5.4) freely.

Each machine thread runs a *single* transaction body (the paper's top-level
rules likewise pertain to "a thread performing a transaction ``tx c``");
drivers sequence multiple transactions by spawning threads.  The structural
rules of Figure 6 (NONDETL/NONDETR/LOOP/SEMI/SEMISKIP) are provided for
completeness via :meth:`Machine.structural_steps`, but APP/CMT already
resolve nondeterminism through ``step``/``fin`` exactly as the paper's APP
and CMT rules do.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import CriterionViolation, MachineError, SpecError
from repro.core.language import Call, Choice, Code, Seq, Skip, SKIP, Star, Tx, fin, seq_cont, step
from repro.core.logs import (
    COMMITTED,
    EMPTY_GLOBAL,
    EMPTY_LOCAL,
    GlobalLog,
    LocalLog,
    NotPushed,
    Pulled,
    Pushed,
    UNCOMMITTED,
)
from repro.core.ops import IdGenerator, Op
from repro.core.spec import MemoizedMovers, SequentialSpec
from repro.obs.tracer import CAT_CRITERION, CAT_RULE, NULL_TRACER, Tracer


def _traced_rule(rule_name: str):
    """Instrument a Figure 5 rule method: a ``rule`` span per application
    (successful or not) and a ``criterion`` check event recording whether
    the rule's side-conditions held.  With the default disabled tracer the
    wrapper is one attribute load and one branch."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, tid, *args):
            tracer = self.tracer
            if not tracer.enabled:
                return fn(self, tid, *args)
            start = tracer.now()
            try:
                successor = fn(self, tid, *args)
            except CriterionViolation as exc:
                tracer.span(rule_name, CAT_RULE, start, tid=tid, args={"ok": False})
                tracer.instant(
                    f"{rule_name}.check",
                    CAT_CRITERION,
                    tid=tid,
                    args={"ok": False, "criterion": exc.criterion, "detail": exc.detail},
                )
                raise
            tracer.span(rule_name, CAT_RULE, start, tid=tid, args={"ok": True})
            tracer.instant(f"{rule_name}.check", CAT_CRITERION, tid=tid, args={"ok": True})
            return successor

        return wrapper

    return decorate


@dataclass(frozen=True)
class Thread:
    """A machine thread ``{c, σ, L}`` plus bookkeeping identity.

    ``original_code``/``original_stack`` record the transaction as first
    submitted (the paper's ``otx``), used by rewind and by the simulation
    relation which maps threads back to un-started transactions.
    """

    tid: int
    code: Code
    stack: Any
    local: LocalLog
    original_code: Code
    original_stack: Any = None

    def own_op_ids(self) -> frozenset:
        return frozenset(op.op_id for op in self.local.own_ops())

    @property
    def done(self) -> bool:
        return isinstance(self.code, Skip) and len(self.local) == 0


class Machine:
    """An executable PUSH/PULL machine over a sequential specification."""

    def __init__(
        self,
        spec: SequentialSpec,
        threads: Sequence[Thread] = (),
        global_log: GlobalLog = EMPTY_GLOBAL,
        ids: Optional[IdGenerator] = None,
        check_gray_criteria: bool = True,
        movers: Optional[MemoizedMovers] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.spec = spec
        self.threads: Tuple[Thread, ...] = tuple(threads)
        self.global_log = global_log
        self.ids = ids or IdGenerator()
        self.check_gray_criteria = check_gray_criteria
        self.tracer = tracer
        self.movers = movers or MemoizedMovers(spec, tracer=tracer)
        self._by_tid: Dict[int, int] = {t.tid: i for i, t in enumerate(self.threads)}
        if len(self._by_tid) != len(self.threads):
            raise MachineError("duplicate thread ids")

    # ------------------------------------------------------------------ utils

    def _with(self, threads: Tuple[Thread, ...], global_log: GlobalLog) -> "Machine":
        return Machine(
            self.spec,
            threads,
            global_log,
            ids=self.ids,
            check_gray_criteria=self.check_gray_criteria,
            movers=self.movers,
            tracer=self.tracer,
        )

    def thread(self, tid: int) -> Thread:
        try:
            return self.threads[self._by_tid[tid]]
        except KeyError:
            raise MachineError(f"no thread with tid {tid}")

    def _replace_thread(self, new_thread: Thread) -> Tuple[Thread, ...]:
        index = self._by_tid[new_thread.tid]
        return self.threads[:index] + (new_thread,) + self.threads[index + 1 :]

    def spawn(self, code: Code, stack: Any = None, tid: Optional[int] = None) -> Tuple["Machine", int]:
        """Add a thread for transaction ``code`` (a ``tx`` block or a bare
        body).  Returns the new machine and the thread id."""
        body = code.body if isinstance(code, Tx) else code
        if tid is None:
            tid = max(self._by_tid, default=-1) + 1
        if tid in self._by_tid:
            raise MachineError(f"thread id {tid} already in use")
        thread = Thread(tid, body, stack, EMPTY_LOCAL, original_code=body, original_stack=stack)
        return self._with(self.threads + (thread,), self.global_log), tid

    def end_thread(self, tid: int) -> "Machine":
        """MS_END: remove a completed thread ``{skip, σ, L}``.

        The paper's rule only requires ``skip`` code; we additionally insist
        the local log is empty (it always is after CMT, and removing a
        thread with live ``npshd``/``pshd`` entries would strand them).
        """
        thread = self.thread(tid)
        if not isinstance(thread.code, Skip):
            raise MachineError("MS_END: thread code is not skip")
        if len(thread.local) != 0:
            raise MachineError("MS_END: thread still has local-log entries")
        index = self._by_tid[tid]
        return self._with(self.threads[:index] + self.threads[index + 1 :], self.global_log)

    # ------------------------------------------------------------------- APP

    def app_choices(self, tid: int) -> FrozenSetType:
        """The ``step(c)`` choices available to APP for thread ``tid``."""
        return step(self.thread(tid).code)

    @_traced_rule("APP")
    def app(self, tid: int, choice: Optional[Tuple[Call, Code]] = None) -> "Machine":
        """APP: apply a next reachable method locally.

        * criterion (i):  ``(m1, c2) ∈ step(c1)`` — ``choice`` must come
          from :meth:`app_choices` (checked);
        * criterion (ii): ``L1`` allows ``⟨m1, σ1, σ2, id1⟩`` — the local
          log admits the operation, whose post-stack ``σ2`` is synthesised
          from the specification's view of ``L1``;
        * criterion (iii): ``fresh(id1)`` — ids come from the machine's
          generator, unique by construction.

        The pre-code and pre-stack are saved in the ``npshd`` flag so UNAPP
        can rewind.
        """
        thread = self.thread(tid)
        choices = step(thread.code)
        if choice is None:
            if len(choices) != 1:
                raise MachineError(
                    f"APP: thread {tid} has {len(choices)} step choices; pass one"
                )
            choice = next(iter(choices))
        if choice not in choices:
            raise CriterionViolation("APP", "i", f"{choice[0]!r} not in step(c)")
        call_node, continuation = choice
        local_view = thread.local.all_ops()
        try:
            ret = self.spec.result(local_view, call_node.method, call_node.args)
        except SpecError as exc:
            raise CriterionViolation("APP", "ii", str(exc))
        op = Op(call_node.method, call_node.args, ret, self.ids.fresh())
        if not self.spec.allows(local_view, op):
            raise CriterionViolation("APP", "ii", f"local log does not allow {op.pretty()}")
        flag = NotPushed(saved_code=thread.code, saved_stack=thread.stack)
        new_thread = replace(
            thread, code=continuation, stack=op.ret, local=thread.local.append(op, flag)
        )
        return self._with(self._replace_thread(new_thread), self.global_log)

    # ----------------------------------------------------------------- UNAPP

    @_traced_rule("UNAPP")
    def unapp(self, tid: int) -> "Machine":
        """UNAPP: rewind the last local-log entry, which must be ``npshd``;
        restores the code and stack saved at APP time."""
        thread = self.thread(tid)
        if len(thread.local) == 0:
            raise MachineError("UNAPP: empty local log")
        last = thread.local[-1]
        if not isinstance(last.flag, NotPushed):
            raise CriterionViolation(
                "UNAPP", "i", f"last entry {last.op.pretty()} is {last.flag!r}, not npshd"
            )
        new_thread = replace(
            thread,
            code=last.flag.saved_code,
            stack=last.flag.saved_stack,
            local=thread.local.drop_last(),
        )
        return self._with(self._replace_thread(new_thread), self.global_log)

    # ------------------------------------------------------------------ PUSH

    @_traced_rule("PUSH")
    def push(self, tid: int, op: Op) -> "Machine":
        """PUSH: publish a local ``npshd`` operation to the global log.

        * criterion (i):  ``op`` moves left of every ``npshd`` operation
          preceding it in the local log (trivial when pushing in APP order,
          as all known implementations do — §4);
        * criterion (ii): every uncommitted global operation of *another*
          transaction moves right of ``op`` (``u ◁ op``), so the pusher can
          still serialize before all concurrent uncommitted transactions;
        * criterion (iii): the global log allows ``op``.
        """
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not isinstance(entry.flag, NotPushed):
            raise MachineError(f"PUSH: {op.pretty()} is not an npshd entry of thread {tid}")
        position = thread.local.index_of(op)
        # criterion (i) — both directions of local-order coherence:
        # (a) op moves left of every earlier unpushed own operation
        #     (preserves I_localOrder, Lemma 5.12);
        # (b) every *later*-local own operation already published (pushed,
        #     uncommitted) moves left of op — op will land after them in G
        #     against local order, the pattern I_reorderPUSH (Lemma 5.10)
        #     constrains.  In-order pushing never triggers (b); it bites on
        #     re-publication after an UNPUSH (found by the theorem fuzzer).
        for earlier in thread.local.entries[:position]:
            if earlier.is_not_pushed and not self.movers.left_mover(op, earlier.op):
                raise CriterionViolation(
                    "PUSH",
                    "i",
                    f"{op.pretty()} does not move left of earlier unpushed "
                    f"{earlier.op.pretty()}",
                )
        for later in thread.local.entries[position + 1 :]:
            if not later.is_pushed:
                continue
            g_entry = self.global_log.entry_for(later.op)
            if g_entry is not None and not g_entry.is_committed:
                if not self.movers.left_mover(later.op, op):
                    raise CriterionViolation(
                        "PUSH",
                        "i",
                        f"already-published later operation "
                        f"{later.op.pretty()} does not move left of "
                        f"{op.pretty()}",
                    )
        # criterion (ii)
        own = thread.own_op_ids()
        for other in self.global_log.uncommitted_ops():
            if other.op_id in own:
                continue
            if not self.movers.left_mover(other, op):
                raise CriterionViolation(
                    "PUSH",
                    "ii",
                    f"uncommitted {other.pretty()} does not move right of {op.pretty()}",
                )
        # criterion (iii)
        if not self.spec.allows(self.global_log.all_ops(), op):
            raise CriterionViolation(
                "PUSH", "iii", f"global log does not allow {op.pretty()}"
            )
        new_local = thread.local.set_flag(
            op, Pushed(saved_code=entry.flag.saved_code, saved_stack=entry.flag.saved_stack)
        )
        new_thread = replace(thread, local=new_local)
        return self._with(
            self._replace_thread(new_thread), self.global_log.append(op, UNCOMMITTED)
        )

    # ---------------------------------------------------------------- UNPUSH

    @_traced_rule("UNPUSH")
    def unpush(self, tid: int, op: Op) -> "Machine":
        """UNPUSH: withdraw a pushed, still-uncommitted operation.

        * criterion (i) [gray]: ``G2`` (everything pushed after ``op``)
          does not depend on ``op`` — in mover form, ``op`` moves right
          past each later entry (``op ◁ e`` for ``e ∈ G2``), as if it had
          never been pushed.  The paper greys this out because disciplined
          drivers can be *proved* to maintain it; the machine checks it
          (under ``check_gray_criteria``) because Lemmas 5.10/5.12 lean on
          it — without it an arbitrary rule player can break
          ``I_localOrder`` by unpushing beneath its own later pushes;
        * criterion (ii): everything pushed chronologically after ``op``
          could still have been pushed had ``op`` not been (the global log
          without ``op`` is still allowed).
        """
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not isinstance(entry.flag, Pushed):
            raise MachineError(f"UNPUSH: {op.pretty()} is not a pshd entry of thread {tid}")
        g_entry = self.global_log.entry_for(op)
        if g_entry is None:
            raise MachineError(f"UNPUSH: {op.pretty()} missing from global log (I_LG broken)")
        if g_entry.is_committed:
            raise MachineError(f"UNPUSH: {op.pretty()} is already committed")
        if self.check_gray_criteria:
            # (a) G2 does not depend on op: op moves right past everything
            #     pushed after it (Lemma 5.10's need).
            position = self.global_log.index_of(op)
            for later in self.global_log.entries[position + 1 :]:
                if not self.movers.left_mover(op, later.op):
                    raise CriterionViolation(
                        "UNPUSH",
                        "i",
                        f"{later.op.pretty()} (pushed later) depends on "
                        f"{op.pretty()}",
                    )
            # (b) own later-local published operations must move left of
            #     op — unpushing turns op ``npshd`` beneath them, the
            #     I_localOrder pattern (Lemma 5.12's UNPUSH case).  Found
            #     necessary by the theorem fuzzer.
            local_position = thread.local.index_of(op)
            for later_entry in thread.local.entries[local_position + 1 :]:
                if not later_entry.is_pushed:
                    continue
                later_global = self.global_log.entry_for(later_entry.op)
                if later_global is None or later_global.is_committed:
                    continue
                if not self.movers.left_mover(later_entry.op, op):
                    raise CriterionViolation(
                        "UNPUSH",
                        "i",
                        f"own published {later_entry.op.pretty()} does not "
                        f"move left of {op.pretty()}",
                    )
        shrunk = self.global_log.remove(op)
        if not self.spec.allowed(shrunk.all_ops()):
            raise CriterionViolation(
                "UNPUSH",
                "ii",
                f"later pushes are not allowed without {op.pretty()}",
            )
        new_local = thread.local.set_flag(
            op, NotPushed(saved_code=entry.flag.saved_code, saved_stack=entry.flag.saved_stack)
        )
        new_thread = replace(thread, local=new_local)
        return self._with(self._replace_thread(new_thread), shrunk)

    # ------------------------------------------------------------------ PULL

    @_traced_rule("PULL")
    def pull(self, tid: int, op: Op) -> "Machine":
        """PULL: import a published operation into the local view.

        * criterion (i):  ``op ∉ L`` — not pulled (or owned) already;
        * criterion (ii): the local log allows ``op``;
        * criterion (iii) [gray]: everything the transaction has done
          locally moves right of ``op`` (``o ◁ op``), so the pulled effect
          can be viewed as having preceded the transaction.
        """
        thread = self.thread(tid)
        if op not in self.global_log:
            raise MachineError(f"PULL: {op.pretty()} not in global log")
        if op in thread.local:
            raise CriterionViolation("PULL", "i", f"{op.pretty()} already in local log")
        if not self.spec.allows(thread.local.all_ops(), op):
            raise CriterionViolation(
                "PULL", "ii", f"local log does not allow {op.pretty()}"
            )
        if self.check_gray_criteria:
            for own in thread.local.own_ops():
                if not self.movers.left_mover(own, op):
                    raise CriterionViolation(
                        "PULL",
                        "iii",
                        f"own {own.pretty()} does not move right of pulled {op.pretty()}",
                    )
        new_thread = replace(thread, local=thread.local.append(op, Pulled()))
        return self._with(self._replace_thread(new_thread), self.global_log)

    # ---------------------------------------------------------------- UNPULL

    @_traced_rule("UNPULL")
    def unpull(self, tid: int, op: Op) -> "Machine":
        """UNPULL: discard a pulled operation.

        * criterion (i): the local log without ``op`` is still allowed —
          the transaction did nothing that depended on ``op``.
        """
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not isinstance(entry.flag, Pulled):
            raise MachineError(f"UNPULL: {op.pretty()} is not a pld entry of thread {tid}")
        shrunk = thread.local.remove(op)
        if not self.spec.allowed(shrunk.all_ops()):
            raise CriterionViolation(
                "UNPULL", "i", f"local log depends on pulled {op.pretty()}"
            )
        new_thread = replace(thread, local=shrunk)
        return self._with(self._replace_thread(new_thread), self.global_log)

    # ------------------------------------------------------------------- CMT

    @_traced_rule("CMT")
    def cmt(self, tid: int) -> "Machine":
        """CMT: the instantaneous commit.

        * criterion (i):   ``fin(c)`` — a method-free path to ``skip``;
        * criterion (ii):  ``L ⊆ G`` — every own operation pushed
          (``⌊L⌋_npshd = ∅``);
        * criterion (iii): every pulled operation is committed in ``G``;
        * criterion (iv):  ``cmt(G, L, G')`` — own pushed operations flip
          to ``gCmt``.

        The thread finishes as ``{skip, σ, []}`` (removable via MS_END).
        """
        thread = self.thread(tid)
        if not fin(thread.code):
            raise CriterionViolation("CMT", "i", f"no method-free path to skip in {thread.code!r}")
        if thread.local.not_pushed_ops():
            pending = ", ".join(o.pretty() for o in thread.local.not_pushed_ops())
            raise CriterionViolation("CMT", "ii", f"unpushed operations remain: {pending}")
        for pulled in thread.local.pulled_ops():
            g_entry = self.global_log.entry_for(pulled)
            if g_entry is None:
                raise CriterionViolation(
                    "CMT", "iii", f"pulled {pulled.pretty()} vanished from global log"
                )
            if not g_entry.is_committed:
                raise CriterionViolation(
                    "CMT", "iii", f"pulled {pulled.pretty()} is still uncommitted"
                )
        new_global = self.global_log.commit(thread.local)
        new_thread = replace(thread, code=SKIP, local=EMPTY_LOCAL)
        return self._with(self._replace_thread(new_thread), new_global)

    # ------------------------------------------------- structural rules (Fig 6)

    def structural_steps(self, tid: int) -> Iterator[Tuple[str, "Machine"]]:
        """The NONDETL/NONDETR/LOOP/SEMI/SEMISKIP reductions for ``tid``.

        Yields ``(rule_name, successor)`` pairs.  SEMI recursion is folded
        into the traversal (the reduction type is inductive, Figure 6).
        """
        thread = self.thread(tid)
        for rule, new_code in _structural_code_steps(thread.code):
            new_thread = replace(thread, code=new_code)
            yield rule, self._with(self._replace_thread(new_thread), self.global_log)

    # -------------------------------------------------------------- inspection

    def enabled_rules(self, tid: int) -> List[str]:
        """Names of Figure 5 rules with at least one enabled instance for
        ``tid`` (used by the model checker and by tests)."""
        enabled: List[str] = []
        thread = self.thread(tid)
        if step(thread.code):
            for choice_pair in step(thread.code):
                if self._app_enabled(thread, choice_pair):
                    enabled.append("APP")
                    break
        if len(thread.local) and thread.local[-1].is_not_pushed:
            enabled.append("UNAPP")
        if any(self._push_enabled(thread, e.op) for e in thread.local if e.is_not_pushed):
            enabled.append("PUSH")
        if any(self._unpush_enabled(thread, e.op) for e in thread.local if e.is_pushed):
            enabled.append("UNPUSH")
        if any(self._pull_enabled(thread, e.op) for e in self.global_log):
            enabled.append("PULL")
        if any(self._unpull_enabled(thread, e.op) for e in thread.local if e.is_pulled):
            enabled.append("UNPULL")
        if self._cmt_enabled(thread):
            enabled.append("CMT")
        return enabled

    def _try(self, fn, *args) -> bool:
        try:
            fn(*args)
            return True
        except (CriterionViolation, MachineError, SpecError):
            return False

    def _app_enabled(self, thread: Thread, choice_pair) -> bool:
        return self._try(self.app, thread.tid, choice_pair)

    def _push_enabled(self, thread: Thread, op: Op) -> bool:
        return self._try(self.push, thread.tid, op)

    def _unpush_enabled(self, thread: Thread, op: Op) -> bool:
        return self._try(self.unpush, thread.tid, op)

    def _pull_enabled(self, thread: Thread, op: Op) -> bool:
        return self._try(self.pull, thread.tid, op)

    def _unpull_enabled(self, thread: Thread, op: Op) -> bool:
        return self._try(self.unpull, thread.tid, op)

    def _cmt_enabled(self, thread: Thread) -> bool:
        return self._try(self.cmt, thread.tid)

    def state_key(self) -> Tuple:
        """A hashable digest of the machine state (payload-level, so model
        checker visits are independent of id allocation order)."""
        thread_keys = tuple(
            (
                t.tid,
                t.code,
                t.stack,
                tuple(
                    (e.op.method, e.op.args, e.op.ret, _flag_kind(e.flag))
                    for e in t.local
                ),
            )
            for t in self.threads
        )
        global_key = tuple(
            (e.op.method, e.op.args, e.op.ret, e.is_committed, _owner_of(self, e.op))
            for e in self.global_log
        )
        return (thread_keys, global_key)


def _flag_kind(flag) -> str:
    if isinstance(flag, NotPushed):
        return "npshd"
    if isinstance(flag, Pushed):
        return "pshd"
    return "pld"


def _owner_of(machine: Machine, op: Op) -> int:
    for t in machine.threads:
        entry = t.local.entry_for(op)
        if entry is not None and entry.is_own:
            return t.tid
    return -1


def _structural_code_steps(code: Code) -> Iterator[Tuple[str, Code]]:
    if isinstance(code, Choice):
        yield "NONDETL", code.left
        yield "NONDETR", code.right
        return
    if isinstance(code, Star):
        yield "LOOP", Choice(Seq(code.body, code), SKIP)
        return
    if isinstance(code, Seq):
        if isinstance(code.first, Skip):
            yield "SEMISKIP", code.second
            return
        for rule, new_first in _structural_code_steps(code.first):
            yield f"SEMI:{rule}", seq_cont(new_first, code.second)
        return
    # Skip / Call / Tx have no structural reductions.
    return


# Typing helper (language.step returns a frozenset of pairs).
FrozenSetType = Iterable[Tuple[Call, Code]]
