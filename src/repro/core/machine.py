"""The PUSH/PULL machine (§4, Figures 4–6).

Machine states are pairs ``T, G`` of a thread list and a global log.  Each
thread ``{c, σ, L}`` carries its remaining transaction body ``c``, a local
stack ``σ`` and a local log ``L``.  The seven rules of Figure 5 —

=========  ==================================================================
APP        speculatively apply a next method locally (``npshd``)
UNAPP      rewind the last unpushed local operation
PUSH       publish an unpushed operation to the global log (``gUCmt``)
UNPUSH     withdraw a pushed-but-uncommitted operation from the global log
PULL       import another transaction's published operation (``pld``)
UNPULL     discard a pulled operation (detangle)
CMT        atomically flip all own pushed operations to ``gCmt``
=========  ==================================================================

— are methods on :class:`Machine` that return the successor state.  Every
side-condition of Figure 5 is checked and failures raise
:class:`~repro.core.errors.CriterionViolation` with the rule name and the
paper's criterion numeral.  Criteria typeset in gray in the paper (not
strictly necessary for serializability) are checked when
``check_gray_criteria`` is set (the default), and skipped otherwise.

Machine states are immutable: steps construct new states, so histories of
states can be retained, hashed (model checker) and rewound (§5.4) freely.

The incremental kernel splits each rule into a *check* (``_check_RULE``,
returning ``None`` when the criteria hold and a zero-argument exception
factory otherwise) and a *construction*.  The rule methods run the check
and build the successor; the enabledness predicates (``push_enabled`` et
al., and :meth:`enabled_rules`) run only the check, so probing a rule no
longer executes its body under ``try/except`` nor allocates exceptions,
successor logs or fresh operation ids.  All ``allowed``/``allows``/
``result`` queries go through the spec's shared denotation cache
(:func:`~repro.core.spec.shared_denotations`) and all mover queries
through the shared per-spec memo (:func:`~repro.core.spec.shared_movers`).

Each machine thread runs a *single* transaction body (the paper's top-level
rules likewise pertain to "a thread performing a transaction ``tx c``");
drivers sequence multiple transactions by spawning threads.  The structural
rules of Figure 6 (NONDETL/NONDETR/LOOP/SEMI/SEMISKIP) are provided for
completeness via :meth:`Machine.structural_steps`, but APP/CMT already
resolve nondeterminism through ``step``/``fin`` exactly as the paper's APP
and CMT rules do.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import CriterionViolation, MachineError, SpecError
from repro.core.language import (
    Call,
    Choice,
    Code,
    Seq,
    Skip,
    SKIP,
    Star,
    Tx,
    fin,
    fin_cached,
    seq_cont,
    sorted_choices,
    step,
)
from repro.core.logs import (
    COMMITTED,
    EMPTY_GLOBAL,
    EMPTY_LOCAL,
    GlobalLog,
    LocalLog,
    NotPushed,
    Pulled,
    Pushed,
    UNCOMMITTED,
)
from repro.core.ops import (
    IdGenerator,
    Op,
    code_state_id,
    payload_class_id,
    payload_class_of,
)
from repro.core.packed import (
    pack_i32,
    pack_owners,
    pack_tid_cs,
    pack_u32,
    unpack_codes,
    unpack_owners,
)
from repro.core.spec import (
    MemoizedMovers,
    SequentialSpec,
    SpecDenotations,
    shared_denotations,
    shared_movers,
)
from repro.obs.tracer import CAT_CRITERION, CAT_RULE, NULL_TRACER, Tracer

#: a check result — ``None`` (criteria hold) or a factory building the
#: exception the rule would raise.  Factories are only invoked on the rule
#: path, so the predicate path never pays for message formatting.
CheckResult = Optional[Callable[[], Exception]]

_UNSET = object()


def _traced_rule(rule_name: str):
    """Instrument a Figure 5 rule method: a ``rule`` span per application
    (successful or not) and a ``criterion`` check event recording whether
    the rule's side-conditions held.  With the default disabled tracer the
    wrapper is one attribute load and one branch."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, tid, *args):
            tracer = self.tracer
            if not tracer.enabled:
                return fn(self, tid, *args)
            start = tracer.now()
            try:
                successor = fn(self, tid, *args)
            except CriterionViolation as exc:
                tracer.span(rule_name, CAT_RULE, start, tid=tid, args={"ok": False})
                tracer.instant(
                    f"{rule_name}.check",
                    CAT_CRITERION,
                    tid=tid,
                    args={"ok": False, "criterion": exc.criterion, "detail": exc.detail},
                )
                raise
            tracer.span(rule_name, CAT_RULE, start, tid=tid, args={"ok": True})
            tracer.instant(f"{rule_name}.check", CAT_CRITERION, tid=tid, args={"ok": True})
            return successor

        return wrapper

    return decorate


@dataclass(frozen=True)
class Thread:
    """A machine thread ``{c, σ, L}`` plus bookkeeping identity.

    ``original_code``/``original_stack`` record the transaction as first
    submitted (the paper's ``otx``), used by rewind and by the simulation
    relation which maps threads back to un-started transactions.
    """

    tid: int
    code: Code
    stack: Any
    local: LocalLog
    original_code: Code
    original_stack: Any = None

    def own_op_ids(self) -> frozenset:
        """The ids of the thread's own operations, cached on the
        (immutable) thread — the PUSH criteria consult this per probe."""
        try:
            return self._ownids  # type: ignore[attr-defined]
        except AttributeError:
            pass
        own = frozenset(op.op_id for op in self.local.own_ops())
        object.__setattr__(self, "_ownids", own)
        return own

    def evolve(
        self, code: Optional[Code] = None, stack: Any = _UNSET, local: Optional[LocalLog] = None
    ) -> "Thread":
        """A copy with the given fields replaced (cheaper than
        ``dataclasses.replace`` on the rules' hot path)."""
        return Thread(
            self.tid,
            self.code if code is None else code,
            self.stack if stack is _UNSET else stack,
            self.local if local is None else local,
            self.original_code,
            self.original_stack,
        )

    @property
    def done(self) -> bool:
        return isinstance(self.code, Skip) and len(self.local) == 0


def _thread_key(thread: Thread) -> bytes:
    """The packed digest of a thread — ``pack("<ii", tid, code_state_id)``
    followed by the local log's packed row codes — cached on the
    (immutable) thread object so successor machines only re-digest changed
    threads.  Byte strings cache their hash in CPython, so repeated
    seen-set membership tests never re-hash the code AST or payloads;
    :func:`repro.core.packed.decode_thread_key` recovers the PR-2
    object-level tuple."""
    try:
        return thread._tkey  # type: ignore[attr-defined]
    except AttributeError:
        pass
    key = (
        pack_tid_cs(thread.tid, code_state_id(thread.code, thread.stack))
        + thread.local.packed()
    )
    object.__setattr__(thread, "_tkey", key)
    return key


class Machine:
    """An executable PUSH/PULL machine over a sequential specification."""

    def __init__(
        self,
        spec: SequentialSpec,
        threads: Sequence[Thread] = (),
        global_log: GlobalLog = EMPTY_GLOBAL,
        ids: Optional[IdGenerator] = None,
        check_gray_criteria: bool = True,
        movers: Optional[MemoizedMovers] = None,
        tracer: Tracer = NULL_TRACER,
        denots: Optional[SpecDenotations] = None,
    ):
        self.spec = spec
        self.threads: Tuple[Thread, ...] = tuple(threads)
        self.global_log = global_log
        self.ids = ids or IdGenerator()
        self.check_gray_criteria = check_gray_criteria
        self.tracer = tracer
        self.movers = movers or shared_movers(spec, tracer=tracer)
        self.denots = denots or shared_denotations(spec, tracer=tracer)
        self._by_tid: Dict[int, int] = {t.tid: i for i, t in enumerate(self.threads)}
        self._skey: Optional[Tuple] = None
        self._skey_src: Optional[Tuple] = None
        # Successor-recipe memo (see successor_keys): payload-level thread
        # configuration → tid-independent expansion recipe.  Shared by all
        # successors of this machine root (copied by reference in _with),
        # so one exploration shares a single memo; never shared across
        # machine roots (check_gray_criteria and the spec may differ).
        self._skmemo: Dict[Tuple, Tuple] = {}
        self._skplans: Dict[Tuple, Tuple] = {}
        if len(self._by_tid) != len(self.threads):
            raise MachineError("duplicate thread ids")

    # ------------------------------------------------------------------ utils

    def _with(
        self,
        threads: Tuple[Thread, ...],
        global_log: GlobalLog,
        changed_tid: Optional[int] = None,
        owner_delta: Optional[Tuple[Any, ...]] = None,
    ) -> "Machine":
        """Successor-state constructor: shares every per-spec component and,
        when the thread list shape is unchanged (every rule except
        spawn/MS_END), the tid index too — the model checker builds tens of
        thousands of successors per scope, so ``__init__`` revalidation is
        skipped on this internal path.

        Every single-thread rule passes ``changed_tid`` so the successor's
        canonical key can be *derived* from this state's (the incremental
        fingerprint update) instead of rebuilt from the whole state: one
        thread digest is swapped into the parent key, and the global part
        is either reused verbatim (``global_log`` identical) or patched
        through ``owner_delta`` — ``("push", tid, payload_class_id)``
        appends a global row code and its owner, ``("unpush", position)``
        drops one, ``("cmt", tid)`` releases the committer's entries.
        """
        machine = Machine.__new__(Machine)
        state = machine.__dict__
        state.update(self.__dict__)
        state["threads"] = threads
        state["global_log"] = global_log
        state["_skey"] = None
        state["_skey_src"] = None
        if len(threads) == len(self.threads):
            # _replace_thread preserves positions, so the tid index copied
            # from the parent carries over.
            if (
                changed_tid is not None
                and self._skey is not None
                and (global_log is self.global_log or owner_delta is not None)
            ):
                state["_skey_src"] = (
                    self._skey,
                    self._by_tid[changed_tid],
                    None if global_log is self.global_log else owner_delta,
                )
        else:
            state["_by_tid"] = {t.tid: i for i, t in enumerate(threads)}
        return machine

    def thread(self, tid: int) -> Thread:
        try:
            return self.threads[self._by_tid[tid]]
        except KeyError:
            raise MachineError(f"no thread with tid {tid}")

    def _replace_thread(self, new_thread: Thread) -> Tuple[Thread, ...]:
        index = self._by_tid[new_thread.tid]
        return self.threads[:index] + (new_thread,) + self.threads[index + 1 :]

    def spawn(self, code: Code, stack: Any = None, tid: Optional[int] = None) -> Tuple["Machine", int]:
        """Add a thread for transaction ``code`` (a ``tx`` block or a bare
        body).  Returns the new machine and the thread id."""
        body = code.body if isinstance(code, Tx) else code
        if tid is None:
            tid = max(self._by_tid, default=-1) + 1
        if tid in self._by_tid:
            raise MachineError(f"thread id {tid} already in use")
        thread = Thread(tid, body, stack, EMPTY_LOCAL, original_code=body, original_stack=stack)
        return self._with(self.threads + (thread,), self.global_log), tid

    def end_thread(self, tid: int) -> "Machine":
        """MS_END: remove a completed thread ``{skip, σ, L}``.

        The paper's rule only requires ``skip`` code; we additionally insist
        the local log is empty (it always is after CMT, and removing a
        thread with live ``npshd``/``pshd`` entries would strand them).
        """
        thread = self.thread(tid)
        if not isinstance(thread.code, Skip):
            raise MachineError("MS_END: thread code is not skip")
        if len(thread.local) != 0:
            raise MachineError("MS_END: thread still has local-log entries")
        index = self._by_tid[tid]
        return self._with(self.threads[:index] + self.threads[index + 1 :], self.global_log)

    def drop_thread(self, tid: int) -> "Machine":
        """Administrative removal of an *abandoned* thread.

        Not a paper rule: MS_END requires ``skip`` code, but a permanently
        aborted transaction leaves its (rolled-back) thread holding the
        original, unconsumed program.  A long-running service cannot keep
        such threads around — every rule application copies the thread
        tuple — so after rollback (local log empty, nothing stranded) the
        service layer discards the thread wholesale.  The empty-local-log
        requirement is what keeps this sound: dropping a thread with live
        entries would strand ``pshd`` work in the global log.
        """
        thread = self.thread(tid)
        if len(thread.local) != 0:
            raise MachineError("drop_thread: thread still has local-log entries")
        index = self._by_tid[tid]
        return self._with(self.threads[:index] + self.threads[index + 1 :], self.global_log)

    def end_key(self, tid: int) -> Tuple:
        """The MS_END successor's canonical :meth:`state_key` — the thread
        digest drops out; the global part is shared.  The thread must be
        ``done`` (the checker guarantees it); see :meth:`unpull_key`."""
        parent_key = self.state_key()
        index = self._by_tid[tid]
        tkeys = parent_key[0]
        return (
            tkeys[:index] + tkeys[index + 1 :],
            parent_key[1],
            parent_key[2],
        )

    def end_state(self, tid: int, skey: Tuple) -> "Machine":
        """Construct the MS_END successor for a ``done`` thread."""
        machine = self.end_thread(tid)
        machine._skey = skey
        machine._skey_src = None
        return machine

    # ------------------------------------------------------------------- APP

    def app_choices(self, tid: int) -> FrozenSetType:
        """The ``step(c)`` choices available to APP for thread ``tid``."""
        return step(self.thread(tid).code)

    @_traced_rule("APP")
    def app(
        self,
        tid: int,
        choice: Optional[Tuple[Call, Code]] = None,
        _checked: bool = False,
    ) -> "Machine":
        """APP: apply a next reachable method locally.

        * criterion (i):  ``(m1, c2) ∈ step(c1)`` — ``choice`` must come
          from :meth:`app_choices` (checked);
        * criterion (ii): ``L1`` allows ``⟨m1, σ1, σ2, id1⟩`` — the local
          log admits the operation, whose post-stack ``σ2`` is synthesised
          from the specification's view of ``L1``;
        * criterion (iii): ``fresh(id1)`` — ids come from the machine's
          generator, unique by construction.

        The pre-code and pre-stack are saved in the ``npshd`` flag so UNAPP
        can rewind.
        """
        thread = self.thread(tid)
        choices = step(thread.code)
        if choice is None:
            if len(choices) != 1:
                raise MachineError(
                    f"APP: thread {tid} has {len(choices)} step choices; pass one"
                )
            choice = next(iter(choices))
        if not _checked and choice not in choices:
            raise CriterionViolation("APP", "i", f"{choice[0]!r} not in step(c)")
        call_node, continuation = choice
        try:
            ret = self.denots.result_log(thread.local, call_node.method, call_node.args)
        except SpecError as exc:
            raise CriterionViolation("APP", "ii", str(exc))
        op = Op(call_node.method, call_node.args, ret, self.ids.fresh())
        if not _checked and not self.denots.allows_log(thread.local, op):
            raise CriterionViolation("APP", "ii", f"local log does not allow {op.pretty()}")
        flag = NotPushed(saved_code=thread.code, saved_stack=thread.stack)
        new_thread = thread.evolve(
            code=continuation, stack=op.ret, local=thread.local.append(op, flag)
        )
        return self._with(self._replace_thread(new_thread), self.global_log, changed_tid=tid)

    def _check_app(self, thread: Thread, choice: Tuple[Call, Code]) -> bool:
        """APP enabledness for a ``step(c)`` member, without minting an id
        or building the successor (criteria depend only on payloads, which
        are interned to class ids on the way in)."""
        call_node = choice[0]
        local = thread.local
        denots = self.denots
        try:
            ret = denots.result_log(local, call_node.method, call_node.args)
        except SpecError:
            return False
        return denots.allows_pid(
            local, payload_class_of(call_node.method, call_node.args, ret)
        )

    def app_enabled(self, tid: int, choice: Optional[Tuple[Call, Code]] = None) -> bool:
        """Whether APP has an enabled instance for ``tid`` (for ``choice``,
        or for any choice when omitted)."""
        thread = self.thread(tid)
        choices = step(thread.code)
        if choice is not None:
            return choice in choices and self._check_app(thread, choice)
        return any(self._check_app(thread, c) for c in choices)

    def try_app(self, tid: int, choice: Tuple[Call, Code]) -> Optional["Machine"]:
        """APP if enabled, else ``None`` — one criterion pass, no exception
        on the disabled path.  ``choice`` must come from :meth:`app_choices`.

        Like every ``try_*`` method, the untraced path constructs the
        successor inline (same construction as the rule body) instead of
        re-entering the traced rule wrapper."""
        thread = self.thread(tid)
        if not self._check_app(thread, choice):
            return None
        if self.tracer.enabled:
            return self.app(tid, choice, True)
        call_node, continuation = choice
        ret = self.denots.result_log(thread.local, call_node.method, call_node.args)
        op = Op(call_node.method, call_node.args, ret, self.ids.fresh())
        flag = NotPushed(saved_code=thread.code, saved_stack=thread.stack)
        new_thread = thread.evolve(
            code=continuation, stack=op.ret, local=thread.local.append(op, flag)
        )
        return self._with(self._replace_thread(new_thread), self.global_log, changed_tid=tid)

    def app_key(self, tid: int, choice: Tuple[Call, Code]) -> Optional[Tuple]:
        """The APP successor's canonical :meth:`state_key`, or ``None`` if
        the instance is disabled — criteria checked, no id minted, no
        successor constructed (see :meth:`unpull_key` for the pattern)."""
        index = self._by_tid[tid]
        thread = self.threads[index]
        call_node, continuation = choice
        local = thread.local
        denots = self.denots
        try:
            ret = denots.result_log(local, call_node.method, call_node.args)
        except SpecError:
            return None
        pid = payload_class_of(call_node.method, call_node.args, ret)
        if not denots.allows_pid(local, pid):
            return None
        parent_key = self.state_key()
        new_tkey = (
            pack_tid_cs(tid, code_state_id(continuation, ret))
            + local.packed()
            + pack_u32(pid << 2)
        )
        tkeys = parent_key[0]
        return (
            tkeys[:index] + (new_tkey,) + tkeys[index + 1 :],
            parent_key[1],
            parent_key[2],
        )

    def app_state(
        self, tid: int, choice: Tuple[Call, Code], skey: Tuple
    ) -> "Machine":
        """Construct the APP successor for an instance :meth:`app_key`
        deemed enabled (the operation id is minted here, so only states the
        checker actually keeps consume ids)."""
        thread = self.threads[self._by_tid[tid]]
        call_node, continuation = choice
        ret = self.denots.result_log(thread.local, call_node.method, call_node.args)
        op = Op(call_node.method, call_node.args, ret, self.ids.fresh())
        flag = NotPushed(saved_code=thread.code, saved_stack=thread.stack)
        new_thread = thread.evolve(
            code=continuation, stack=op.ret, local=thread.local.append(op, flag)
        )
        machine = self._with(self._replace_thread(new_thread), self.global_log)
        machine._skey = skey
        machine._skey_src = None
        return machine

    # ----------------------------------------------------------------- UNAPP

    @_traced_rule("UNAPP")
    def unapp(self, tid: int) -> "Machine":
        """UNAPP: rewind the last local-log entry, which must be ``npshd``;
        restores the code and stack saved at APP time."""
        thread = self.thread(tid)
        if len(thread.local) == 0:
            raise MachineError("UNAPP: empty local log")
        last = thread.local[-1]
        if not isinstance(last.flag, NotPushed):
            raise CriterionViolation(
                "UNAPP", "i", f"last entry {last.op.pretty()} is {last.flag!r}, not npshd"
            )
        new_thread = thread.evolve(
            code=last.flag.saved_code,
            stack=last.flag.saved_stack,
            local=thread.local.drop_last(),
        )
        return self._with(self._replace_thread(new_thread), self.global_log, changed_tid=tid)

    def unapp_enabled(self, tid: int) -> bool:
        local = self.thread(tid).local
        return len(local) > 0 and local[-1].is_not_pushed

    def unapp_key(self, tid: int) -> Optional[Tuple]:
        """The UNAPP successor's canonical :meth:`state_key`, or ``None``
        if disabled — the last flag row drops off and the saved code/stack
        come back; no successor constructed."""
        index = self._by_tid[tid]
        thread = self.threads[index]
        local = thread.local
        if len(local) == 0:
            return None
        last = local[-1]
        if not last.is_not_pushed:
            return None
        flag = last.flag
        parent_key = self.state_key()
        new_tkey = (
            pack_tid_cs(tid, code_state_id(flag.saved_code, flag.saved_stack))
            + local.packed()[:-4]
        )
        tkeys = parent_key[0]
        return (
            tkeys[:index] + (new_tkey,) + tkeys[index + 1 :],
            parent_key[1],
            parent_key[2],
        )

    def unapp_state(self, tid: int, skey: Tuple) -> "Machine":
        """Construct the UNAPP successor for an instance :meth:`unapp_key`
        deemed enabled."""
        thread = self.threads[self._by_tid[tid]]
        last = thread.local[-1]
        new_thread = thread.evolve(
            code=last.flag.saved_code,
            stack=last.flag.saved_stack,
            local=thread.local.drop_last(),
        )
        machine = self._with(self._replace_thread(new_thread), self.global_log)
        machine._skey = skey
        machine._skey_src = None
        return machine

    # ------------------------------------------------------------------ PUSH

    def _check_push(self, thread: Thread, op: Op) -> CheckResult:
        """PUSH criteria (i)–(iii) for an ``npshd`` entry ``op``.

        * criterion (i):  ``op`` moves left of every ``npshd`` operation
          preceding it in the local log (trivial when pushing in APP order,
          as all known implementations do — §4);
        * criterion (ii): every uncommitted global operation of *another*
          transaction moves right of ``op`` (``u ◁ op``), so the pusher can
          still serialize before all concurrent uncommitted transactions;
        * criterion (iii): the global log allows ``op``.
        """
        local = thread.local
        position = local.index_of(op)
        codes = local.codes()
        op_pid = payload_class_id(op)
        lm = self.movers.left_mover_pid
        entries = local.entries
        # criterion (i) — both directions of local-order coherence:
        # (a) op moves left of every earlier unpushed own operation
        #     (preserves I_localOrder, Lemma 5.12);
        # (b) every *later*-local own operation already published (pushed,
        #     uncommitted) moves left of op — op will land after them in G
        #     against local order, the pattern I_reorderPUSH (Lemma 5.10)
        #     constrains.  In-order pushing never triggers (b); it bites on
        #     re-publication after an UNPUSH (found by the theorem fuzzer).
        for i in range(position):
            c = codes[i]
            if c & 3 == 0 and not lm(op_pid, c >> 2):
                earlier = entries[i]
                return lambda earlier=earlier: CriterionViolation(
                    "PUSH",
                    "i",
                    f"{op.pretty()} does not move left of earlier unpushed "
                    f"{earlier.op.pretty()}",
                )
        global_log = self.global_log
        gcodes = global_log.codes()
        if position + 1 < len(codes):
            gpos_of = global_log._positions()
            for i in range(position + 1, len(codes)):
                c = codes[i]
                if c & 3 != 1:
                    continue
                gpos = gpos_of.get(entries[i].op.op_id)
                if gpos is not None and not gcodes[gpos] & 1 and not lm(c >> 2, op_pid):
                    later = entries[i]
                    return lambda later=later: CriterionViolation(
                        "PUSH",
                        "i",
                        f"already-published later operation "
                        f"{later.op.pretty()} does not move left of "
                        f"{op.pretty()}",
                    )
        # criterion (ii)
        own = thread.own_op_ids()
        idrow = global_log.id_row()
        for i, gc in enumerate(gcodes):
            if gc & 1 or idrow[i] in own:
                continue
            if not lm(gc >> 1, op_pid):
                other = global_log.entries[i].op
                return lambda other=other: CriterionViolation(
                    "PUSH",
                    "ii",
                    f"uncommitted {other.pretty()} does not move right of {op.pretty()}",
                )
        # criterion (iii)
        if not self.denots.allows_pid(global_log, op_pid):
            return lambda: CriterionViolation(
                "PUSH", "iii", f"global log does not allow {op.pretty()}"
            )
        return None

    @_traced_rule("PUSH")
    def push(self, tid: int, op: Op, _checked: bool = False) -> "Machine":
        """PUSH: publish a local ``npshd`` operation to the global log.

        Criteria are documented on :meth:`_check_push`.
        """
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not isinstance(entry.flag, NotPushed):
            raise MachineError(f"PUSH: {op.pretty()} is not an npshd entry of thread {tid}")
        if not _checked:
            fail = self._check_push(thread, op)
            if fail is not None:
                raise fail()
        new_local = thread.local.set_flag(
            op, Pushed(saved_code=entry.flag.saved_code, saved_stack=entry.flag.saved_stack)
        )
        new_thread = thread.evolve(local=new_local)
        return self._with(
            self._replace_thread(new_thread),
            self.global_log.append(op, UNCOMMITTED),
            changed_tid=tid,
            owner_delta=("push", tid, payload_class_id(op)),
        )

    def push_enabled(self, tid: int, op: Op) -> bool:
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not entry.is_not_pushed:
            return False
        return self._check_push(thread, op) is None

    def try_push(self, tid: int, op: Op) -> Optional["Machine"]:
        """PUSH if enabled, else ``None`` (one criterion pass)."""
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not entry.is_not_pushed:
            return None
        if self._check_push(thread, op) is not None:
            return None
        if self.tracer.enabled:
            return self.push(tid, op, True)
        new_local = thread.local.set_flag(
            op, Pushed(saved_code=entry.flag.saved_code, saved_stack=entry.flag.saved_stack)
        )
        new_thread = thread.evolve(local=new_local)
        return self._with(
            self._replace_thread(new_thread),
            self.global_log.append(op, UNCOMMITTED),
            changed_tid=tid,
            owner_delta=("push", tid, payload_class_id(op)),
        )

    def push_key(self, tid: int, op: Op) -> Optional[Tuple]:
        """The PUSH successor's canonical :meth:`state_key`, or ``None`` if
        disabled — op's flag row flips npshd → pshd, its global row and
        owner slot append; no successor constructed.  ``op`` must be an
        ``npshd`` entry of the thread's local log (the checker iterates
        ``not_pushed_ops()``)."""
        index = self._by_tid[tid]
        thread = self.threads[index]
        if self._check_push(thread, op) is not None:
            return None
        parent_key = self.state_key()
        local = thread.local
        lidx = local.index_of(op)
        # The thread digest: op's row flips npshd → pshd in place — an
        # 8-byte header plus 4 bytes per row, patched at byte offset
        # ``8 + 4·lidx`` (code and stack are untouched by PUSH, so the
        # parent's cached bytes are reused around the patch).
        tkey = _thread_key(thread)
        offset = 8 + 4 * lidx
        new_code = (local.codes()[lidx] & ~3) | 1
        new_tkey = tkey[:offset] + pack_u32(new_code) + tkey[offset + 4 :]
        tkeys = parent_key[0]
        return (
            tkeys[:index] + (new_tkey,) + tkeys[index + 1 :],
            parent_key[1] + pack_u32(payload_class_id(op) << 1),
            parent_key[2] + pack_i32(tid),
        )

    def push_state(self, tid: int, op: Op, skey: Tuple) -> "Machine":
        """Construct the PUSH successor for an instance :meth:`push_key`
        deemed enabled."""
        thread = self.threads[self._by_tid[tid]]
        entry = thread.local.entry_for(op)
        new_local = thread.local.set_flag(
            op,
            Pushed(
                saved_code=entry.flag.saved_code,
                saved_stack=entry.flag.saved_stack,
            ),
        )
        new_thread = thread.evolve(local=new_local)
        machine = self._with(
            self._replace_thread(new_thread),
            self.global_log.append(op, UNCOMMITTED),
        )
        machine._skey = skey
        machine._skey_src = None
        return machine

    # ---------------------------------------------------------------- UNPUSH

    def _check_unpush(self, thread: Thread, op: Op) -> CheckResult:
        """UNPUSH criteria for a ``pshd`` entry ``op``.

        * criterion (i) [gray]: ``G2`` (everything pushed after ``op``)
          does not depend on ``op`` — in mover form, ``op`` moves right
          past each later entry (``op ◁ e`` for ``e ∈ G2``), as if it had
          never been pushed.  The paper greys this out because disciplined
          drivers can be *proved* to maintain it; the machine checks it
          (under ``check_gray_criteria``) because Lemmas 5.10/5.12 lean on
          it — without it an arbitrary rule player can break
          ``I_localOrder`` by unpushing beneath its own later pushes;
        * criterion (ii): everything pushed chronologically after ``op``
          could still have been pushed had ``op`` not been (the global log
          without ``op`` is still allowed).
        """
        global_log = self.global_log
        gpos_of = global_log._positions()
        position = gpos_of.get(op.op_id)
        if position is None:
            return lambda: MachineError(
                f"UNPUSH: {op.pretty()} missing from global log (I_LG broken)"
            )
        gcodes = global_log.codes()
        if gcodes[position] & 1:
            return lambda: MachineError(f"UNPUSH: {op.pretty()} is already committed")
        if self.check_gray_criteria:
            op_pid = payload_class_id(op)
            lm = self.movers.left_mover_pid
            # (a) G2 does not depend on op: op moves right past everything
            #     pushed after it (Lemma 5.10's need).
            for i in range(position + 1, len(gcodes)):
                if not lm(op_pid, gcodes[i] >> 1):
                    later = global_log.entries[i]
                    return lambda later=later: CriterionViolation(
                        "UNPUSH",
                        "i",
                        f"{later.op.pretty()} (pushed later) depends on "
                        f"{op.pretty()}",
                    )
            # (b) own later-local published operations must move left of
            #     op — unpushing turns op ``npshd`` beneath them, the
            #     I_localOrder pattern (Lemma 5.12's UNPUSH case).  Found
            #     necessary by the theorem fuzzer.
            local = thread.local
            codes = local.codes()
            entries = local.entries
            local_position = local.index_of(op)
            for i in range(local_position + 1, len(codes)):
                c = codes[i]
                if c & 3 != 1:
                    continue
                later_gpos = gpos_of.get(entries[i].op.op_id)
                if later_gpos is None or gcodes[later_gpos] & 1:
                    continue
                if not lm(c >> 2, op_pid):
                    later_entry = entries[i]
                    return lambda later_entry=later_entry: CriterionViolation(
                        "UNPUSH",
                        "i",
                        f"own published {later_entry.op.pretty()} does not "
                        f"move left of {op.pretty()}",
                    )
        shrunk = global_log.remove(op)
        if not self.denots.allowed_log(shrunk):
            return lambda: CriterionViolation(
                "UNPUSH",
                "ii",
                f"later pushes are not allowed without {op.pretty()}",
            )
        return None

    @_traced_rule("UNPUSH")
    def unpush(self, tid: int, op: Op, _checked: bool = False) -> "Machine":
        """UNPUSH: withdraw a pushed, still-uncommitted operation.

        Criteria are documented on :meth:`_check_unpush`.
        """
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not isinstance(entry.flag, Pushed):
            raise MachineError(f"UNPUSH: {op.pretty()} is not a pshd entry of thread {tid}")
        if not _checked:
            fail = self._check_unpush(thread, op)
            if fail is not None:
                raise fail()
        position = self.global_log.index_of(op)
        shrunk = self.global_log.remove(op)
        new_local = thread.local.set_flag(
            op, NotPushed(saved_code=entry.flag.saved_code, saved_stack=entry.flag.saved_stack)
        )
        new_thread = thread.evolve(local=new_local)
        return self._with(
            self._replace_thread(new_thread),
            shrunk,
            changed_tid=tid,
            owner_delta=("unpush", position),
        )

    def unpush_enabled(self, tid: int, op: Op) -> bool:
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not entry.is_pushed:
            return False
        return self._check_unpush(thread, op) is None

    def try_unpush(self, tid: int, op: Op) -> Optional["Machine"]:
        """UNPUSH if enabled, else ``None`` (one criterion pass)."""
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not entry.is_pushed:
            return None
        if self._check_unpush(thread, op) is not None:
            return None
        if self.tracer.enabled:
            return self.unpush(tid, op, True)
        position = self.global_log.index_of(op)
        shrunk = self.global_log.remove(op)
        new_local = thread.local.set_flag(
            op, NotPushed(saved_code=entry.flag.saved_code, saved_stack=entry.flag.saved_stack)
        )
        new_thread = thread.evolve(local=new_local)
        return self._with(
            self._replace_thread(new_thread),
            shrunk,
            changed_tid=tid,
            owner_delta=("unpush", position),
        )

    def unpush_key(self, tid: int, op: Op) -> Optional[Tuple]:
        """The UNPUSH successor's canonical :meth:`state_key`, or ``None``
        if the rule is disabled — one criterion pass plus patched cached
        rows, no successor construction.  ``op`` must be a ``pshd`` entry
        of the thread's local log (the checker iterates ``pushed_ops()``;
        see :meth:`unpull_key`)."""
        index = self._by_tid[tid]
        thread = self.threads[index]
        if self._check_unpush(thread, op) is not None:
            return None
        parent_key = self.state_key()
        # The thread digest: op's flag row flips pshd → npshd in place.
        local = thread.local
        lidx = local.index_of(op)
        tkey = _thread_key(thread)
        offset = 8 + 4 * lidx
        new_code = local.codes()[lidx] & ~3
        new_tkey = tkey[:offset] + pack_u32(new_code) + tkey[offset + 4 :]
        tkeys = parent_key[0]
        # The global part: op's row and owner slot drop out.
        gidx = 4 * self.global_log.index_of(op)
        rows = parent_key[1]
        owner_row = parent_key[2]
        return (
            tkeys[:index] + (new_tkey,) + tkeys[index + 1 :],
            rows[:gidx] + rows[gidx + 4 :],
            owner_row[:gidx] + owner_row[gidx + 4 :],
        )

    def unpush_state(self, tid: int, op: Op, skey: Tuple) -> "Machine":
        """Construct the UNPUSH successor for an instance that
        :meth:`unpush_key` deemed enabled; ``skey`` becomes the successor's
        cached state key."""
        thread = self.threads[self._by_tid[tid]]
        entry = thread.local.entry_for(op)
        new_local = thread.local.set_flag(
            op,
            NotPushed(
                saved_code=entry.flag.saved_code,
                saved_stack=entry.flag.saved_stack,
            ),
        )
        new_thread = thread.evolve(local=new_local)
        machine = self._with(
            self._replace_thread(new_thread), self.global_log.remove(op),
        )
        machine._skey = skey
        machine._skey_src = None
        return machine

    # ------------------------------------------------------------------ PULL

    def _check_pull(self, thread: Thread, op: Op) -> CheckResult:
        """PULL criteria for a global-log operation ``op``.

        * criterion (i):  ``op ∉ L`` — not pulled (or owned) already;
        * criterion (ii): the local log allows ``op``;
        * criterion (iii) [gray]: everything the transaction has done
          locally moves right of ``op`` (``o ◁ op``), so the pulled effect
          can be viewed as having preceded the transaction.
        """
        local = thread.local
        if op.op_id in local._positions():
            return lambda: CriterionViolation(
                "PULL", "i", f"{op.pretty()} already in local log"
            )
        op_pid = payload_class_id(op)
        if not self.denots.allows_pid(local, op_pid):
            return lambda: CriterionViolation(
                "PULL", "ii", f"local log does not allow {op.pretty()}"
            )
        if self.check_gray_criteria:
            lm = self.movers.left_mover_pid
            codes = local.codes()
            for i, c in enumerate(codes):
                if c & 3 != 2 and not lm(c >> 2, op_pid):
                    own = local.entries[i].op
                    return lambda own=own: CriterionViolation(
                        "PULL",
                        "iii",
                        f"own {own.pretty()} does not move right of pulled {op.pretty()}",
                    )
        return None

    @_traced_rule("PULL")
    def pull(self, tid: int, op: Op, _checked: bool = False) -> "Machine":
        """PULL: import a published operation into the local view.

        Criteria are documented on :meth:`_check_pull`.
        """
        thread = self.thread(tid)
        if op not in self.global_log:
            raise MachineError(f"PULL: {op.pretty()} not in global log")
        if not _checked:
            fail = self._check_pull(thread, op)
            if fail is not None:
                raise fail()
        new_thread = thread.evolve(local=thread.local.append(op, Pulled()))
        return self._with(self._replace_thread(new_thread), self.global_log, changed_tid=tid)

    def pull_enabled(self, tid: int, op: Op) -> bool:
        thread = self.thread(tid)
        if op not in self.global_log:
            return False
        return self._check_pull(thread, op) is None

    def try_pull(self, tid: int, op: Op) -> Optional["Machine"]:
        """PULL if enabled, else ``None`` (one criterion pass)."""
        thread = self.thread(tid)
        if op not in self.global_log:
            return None
        if self._check_pull(thread, op) is not None:
            return None
        if self.tracer.enabled:
            return self.pull(tid, op, True)
        new_thread = thread.evolve(local=thread.local.append(op, Pulled()))
        return self._with(self._replace_thread(new_thread), self.global_log, changed_tid=tid)

    def pull_key(self, tid: int, op: Op) -> Optional[Tuple]:
        """The PULL successor's canonical :meth:`state_key`, or ``None`` if
        disabled — one pulled flag row appends; the global part is shared.
        ``op`` must come from this machine's global log (as the checker's
        iteration guarantees)."""
        index = self._by_tid[tid]
        thread = self.threads[index]
        if self._check_pull(thread, op) is not None:
            return None
        parent_key = self.state_key()
        new_tkey = _thread_key(thread) + pack_u32((payload_class_id(op) << 2) | 2)
        tkeys = parent_key[0]
        return (
            tkeys[:index] + (new_tkey,) + tkeys[index + 1 :],
            parent_key[1],
            parent_key[2],
        )

    def pull_state(self, tid: int, op: Op, skey: Tuple) -> "Machine":
        """Construct the PULL successor for an instance :meth:`pull_key`
        deemed enabled."""
        thread = self.threads[self._by_tid[tid]]
        new_thread = thread.evolve(local=thread.local.append(op, Pulled()))
        machine = self._with(self._replace_thread(new_thread), self.global_log)
        machine._skey = skey
        machine._skey_src = None
        return machine

    # ---------------------------------------------------------------- UNPULL

    def _check_unpull(self, thread: Thread, op: Op) -> CheckResult:
        """UNPULL criterion (i): the local log without ``op`` is still
        allowed — the transaction did nothing that depended on ``op``."""
        shrunk = thread.local.remove(op)
        if not self.denots.allowed_log(shrunk):
            return lambda: CriterionViolation(
                "UNPULL", "i", f"local log depends on pulled {op.pretty()}"
            )
        return None

    @_traced_rule("UNPULL")
    def unpull(self, tid: int, op: Op, _checked: bool = False) -> "Machine":
        """UNPULL: discard a pulled operation.

        Criterion is documented on :meth:`_check_unpull`.
        """
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not isinstance(entry.flag, Pulled):
            raise MachineError(f"UNPULL: {op.pretty()} is not a pld entry of thread {tid}")
        if not _checked:
            fail = self._check_unpull(thread, op)
            if fail is not None:
                raise fail()
        new_thread = thread.evolve(local=thread.local.remove(op))
        return self._with(self._replace_thread(new_thread), self.global_log, changed_tid=tid)

    def unpull_enabled(self, tid: int, op: Op) -> bool:
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not entry.is_pulled:
            return False
        return self._check_unpull(thread, op) is None

    def try_unpull(self, tid: int, op: Op) -> Optional["Machine"]:
        """UNPULL if enabled, else ``None`` (one criterion pass)."""
        thread = self.thread(tid)
        entry = thread.local.entry_for(op)
        if entry is None or not entry.is_pulled:
            return None
        shrunk = thread.local.remove(op)
        if not self.denots.allowed_log(shrunk):
            return None
        if self.tracer.enabled:
            return self.unpull(tid, op, True)
        new_thread = thread.evolve(local=shrunk)
        return self._with(self._replace_thread(new_thread), self.global_log, changed_tid=tid)

    def unpull_key(self, tid: int, op: Op) -> Optional[Tuple]:
        """The UNPULL successor's canonical :meth:`state_key`, or ``None``
        if the rule is disabled — derived from this state's key plus the
        (memoized) shrunk log, *without constructing the successor*.

        Backward moves mostly land on already-visited states, so the model
        checker probes this first and only materialises the machine (via
        :meth:`unpull_state`) when the key is genuinely new.  Requires this
        machine's own key to be computed (always true for a visited state)
        and ``op`` to be a ``pld`` entry of the thread's local log (the
        checker iterates ``pulled_ops()``).
        """
        index = self._by_tid[tid]
        thread = self.threads[index]
        shrunk = thread.local.remove(op)
        if not self.denots.allowed_log(shrunk):
            return None
        parent_key = self.state_key()
        new_tkey = _thread_key(thread)[:8] + shrunk.packed()
        tkeys = parent_key[0]
        return (
            tkeys[:index] + (new_tkey,) + tkeys[index + 1 :],
            parent_key[1],
            parent_key[2],
        )

    def unpull_state(self, tid: int, op: Op, skey: Tuple) -> "Machine":
        """Construct the UNPULL successor for an instance that
        :meth:`unpull_key` deemed enabled; ``skey`` (its return value)
        becomes the successor's cached state key."""
        thread = self.threads[self._by_tid[tid]]
        new_thread = thread.evolve(local=thread.local.remove(op))
        machine = self._with(
            self._replace_thread(new_thread), self.global_log, changed_tid=tid
        )
        machine._skey = skey
        machine._skey_src = None
        return machine

    # ------------------------------------------------------------------- CMT

    def _check_cmt(self, thread: Thread) -> CheckResult:
        """CMT criteria.

        * criterion (i):   ``fin(c)`` — a method-free path to ``skip``;
        * criterion (ii):  ``L ⊆ G`` — every own operation pushed
          (``⌊L⌋_npshd = ∅``);
        * criterion (iii): every pulled operation is committed in ``G``;
        * criterion (iv):  ``cmt(G, L, G')`` — own pushed operations flip
          to ``gCmt`` (the construction, always possible under I_LG).
        """
        if not fin_cached(thread.code):
            return lambda: CriterionViolation(
                "CMT", "i", f"no method-free path to skip in {thread.code!r}"
            )
        local = thread.local
        codes = local.codes()
        for c in codes:
            if c & 3 == 0:
                return lambda: CriterionViolation(
                    "CMT",
                    "ii",
                    "unpushed operations remain: "
                    + ", ".join(o.pretty() for o in local.not_pushed_ops()),
                )
        global_log = self.global_log
        gpos_of = global_log._positions()
        gcodes = global_log.codes()
        entries = local.entries
        for i, c in enumerate(codes):
            if c & 3 != 2:
                continue
            gpos = gpos_of.get(entries[i].op.op_id)
            if gpos is None:
                pulled = entries[i].op
                return lambda pulled=pulled: CriterionViolation(
                    "CMT", "iii", f"pulled {pulled.pretty()} vanished from global log"
                )
            if not gcodes[gpos] & 1:
                pulled = entries[i].op
                return lambda pulled=pulled: CriterionViolation(
                    "CMT", "iii", f"pulled {pulled.pretty()} is still uncommitted"
                )
        return None

    @_traced_rule("CMT")
    def cmt(self, tid: int, _checked: bool = False) -> "Machine":
        """CMT: the instantaneous commit.

        Criteria are documented on :meth:`_check_cmt`.  The thread finishes
        as ``{skip, σ, []}`` (removable via MS_END).
        """
        thread = self.thread(tid)
        if not _checked:
            fail = self._check_cmt(thread)
            if fail is not None:
                raise fail()
        new_global = self.global_log.commit(thread.local)
        new_thread = thread.evolve(code=SKIP, local=EMPTY_LOCAL)
        return self._with(
            self._replace_thread(new_thread),
            new_global,
            changed_tid=tid,
            owner_delta=("cmt", tid),
        )

    def cmt_enabled(self, tid: int) -> bool:
        return self._check_cmt(self.thread(tid)) is None

    def cmt_key(self, tid: int) -> Optional[Tuple]:
        """The CMT successor's canonical :meth:`state_key`, or ``None`` if
        disabled — the committer's global rows flip to committed and leave
        the owner row, its thread digest resets to ``{skip, σ, []}``; no
        successor constructed (see :meth:`unpull_key`)."""
        index = self._by_tid[tid]
        thread = self.threads[index]
        if self._check_cmt(thread) is not None:
            return None
        parent_key = self.state_key()
        new_tkey = pack_tid_cs(tid, code_state_id(SKIP, thread.stack))
        tkeys = parent_key[0]
        owners = unpack_owners(parent_key[2])
        gcodes = unpack_codes(parent_key[1])
        for i, o in enumerate(owners):
            if o == tid:
                gcodes[i] |= 1
                owners[i] = -1
        return (
            tkeys[:index] + (new_tkey,) + tkeys[index + 1 :],
            gcodes.tobytes(),
            owners.tobytes(),
        )

    def cmt_state(self, tid: int, skey: Tuple) -> "Machine":
        """Construct the CMT successor for an instance :meth:`cmt_key`
        deemed enabled."""
        thread = self.threads[self._by_tid[tid]]
        new_global = self.global_log.commit(thread.local)
        new_thread = thread.evolve(code=SKIP, local=EMPTY_LOCAL)
        machine = self._with(self._replace_thread(new_thread), new_global)
        machine._skey = skey
        machine._skey_src = None
        return machine

    def try_cmt(self, tid: int) -> Optional["Machine"]:
        """CMT if enabled, else ``None`` (one criterion pass)."""
        thread = self.thread(tid)
        if self._check_cmt(thread) is not None:
            return None
        if self.tracer.enabled:
            return self.cmt(tid, True)
        new_global = self.global_log.commit(thread.local)
        new_thread = thread.evolve(code=SKIP, local=EMPTY_LOCAL)
        return self._with(
            self._replace_thread(new_thread),
            new_global,
            changed_tid=tid,
            owner_delta=("cmt", tid),
        )

    def try_unapp(self, tid: int) -> Optional["Machine"]:
        """UNAPP if enabled, else ``None``."""
        if not self.unapp_enabled(tid):
            return None
        return self.unapp(tid)

    # -------------------------------------------- batched key-first expansion

    def successor_keys(
        self,
        tid: int,
        include_backward: bool,
        pull_active: bool,
        pull_committed_only: bool,
        pull_budget: Optional[int],
    ) -> List[Tuple]:
        """Every enabled rule instance of one (unfinished) thread as a
        ``(rule, arg, skey)`` triple, in the checker's canonical emission
        order (APP, PUSH, PULL, CMT, UNAPP, UNPUSH, UNPULL).

        Batched, memoized form of the per-instance ``*_key`` methods.
        Which instances are enabled — and the integer patches their keys
        need — is a pure function of the thread's payload-level
        configuration: its interned code-state, its packed local column,
        the packed global column, and the local→global position map
        (``lgmap``; the §5.3 criteria read global positions only through
        it).  That decision vector is computed once per configuration by
        :meth:`_successor_recipe` (which goes through the same
        ``_check_*`` predicates as the rule methods — one implementation)
        and memoized in ``_skmemo``; product states that revisit the
        configuration — the overwhelmingly common case — skip every
        criterion scan and denotation lookup and only re-assemble the key
        bytes around this state's parent key.  ``arg`` is the step choice
        (APP), the operation (PUSH/PULL/UNPUSH/UNPULL) or ``None``
        (CMT/UNAPP); it is what the matching ``*_state`` constructor
        needs when the key turns out to be new.
        """
        index = self._by_tid[tid]
        thread = self.threads[index]
        # The plan — (rule, arg, successor thread digest, global patch)
        # per enabled instance — is a pure function of the thread's value
        # (tid, interned code-state, local log), the global log and the
        # policy; the logs hash by value with cached hashes, so product
        # states that revisit a configuration (the overwhelmingly common
        # case) pay one tuple hash for the whole expansion.  Ops handed
        # back through a shared plan may be equal rather than identical
        # objects — sound, because every log keys them by ``op_id``.
        pkey = (
            tid,
            code_state_id(thread.code, thread.stack),
            thread.local,
            self.global_log,
            include_backward,
            pull_active,
            pull_committed_only,
            pull_budget,
        )
        plans = self._skplans
        plan = plans.get(pkey)
        if plan is None:
            plan = plans[pkey] = self._successor_plan(
                thread,
                include_backward,
                pull_active,
                pull_committed_only,
                pull_budget,
            )
        parent_key = self.state_key()
        tkeys = parent_key[0]
        head = tkeys[:index]
        tail = tkeys[index + 1 :]
        grows = parent_key[1]
        orow = parent_key[2]
        out: List[Tuple] = []
        emit = out.append
        for rule, arg, new_tkey, gop in plan:
            tk = head + (new_tkey,) + tail
            if gop is None:
                emit((rule, arg, (tk, grows, orow)))
            elif gop[0] == "push":
                emit((rule, arg, (tk, grows + gop[1], orow + gop[2])))
            elif gop[0] == "unpush":
                gidx = gop[1]
                emit((
                    rule,
                    arg,
                    (
                        tk,
                        grows[:gidx] + grows[gidx + 4 :],
                        orow[:gidx] + orow[gidx + 4 :],
                    ),
                ))
            else:  # "cmt" — release this state's owner row, live
                owners = unpack_owners(orow)
                gcodes = unpack_codes(grows)
                for i, o in enumerate(owners):
                    if o == tid:
                        gcodes[i] |= 1
                        owners[i] = -1
                emit((rule, arg, (tk, gcodes.tobytes(), owners.tobytes())))
        return out

    def _successor_plan(
        self,
        thread: Thread,
        include_backward: bool,
        pull_active: bool,
        pull_committed_only: bool,
        pull_budget: Optional[int],
    ) -> Tuple[Tuple, ...]:
        """Assemble one thread's emission plan from its (payload-level,
        memoized) expansion recipe: ``(rule, arg, new_tkey, gop)`` per
        enabled instance, where ``new_tkey`` is the successor's finished
        thread digest and ``gop`` the global-column patch (``None`` for
        rules that leave ``G`` alone, an appended/dropped row for
        PUSH/UNPUSH, a marker for CMT whose owner flip must read the live
        owner row)."""
        local = thread.local
        global_log = self.global_log
        entries = local.entries
        gpos_of = global_log._positions()
        lgmap = pack_owners(
            gpos_of.get(e.op.op_id, -1) for e in entries
        )
        memo_key = (
            include_backward,
            pull_active,
            pull_committed_only,
            pull_budget,
            code_state_id(thread.code, thread.stack),
            local.packed(),
            global_log.packed(),
            lgmap,
        )
        memo = self._skmemo
        recipe = memo.get(memo_key)
        if recipe is None:
            recipe = memo[memo_key] = self._successor_recipe(
                thread,
                include_backward,
                pull_active,
                pull_committed_only,
                pull_budget,
            )
        tid = thread.tid
        tkey = _thread_key(thread)
        lpk = local.packed()
        gentries = global_log.entries
        tid_row = pack_i32(tid)
        out: List[Tuple] = []
        emit = out.append
        for ins in recipe:
            rule = ins[0]
            if rule == "UNPULL":
                offset = 8 + 4 * ins[1]
                emit((
                    rule,
                    entries[ins[1]].op,
                    tkey[:offset] + tkey[offset + 4 :],
                    None,
                ))
            elif rule == "UNPUSH":
                offset = 8 + 4 * ins[1]
                emit((
                    rule,
                    entries[ins[1]].op,
                    tkey[:offset] + ins[3] + tkey[offset + 4 :],
                    ("unpush", 4 * ins[2]),
                ))
            elif rule == "PUSH":
                offset = 8 + 4 * ins[1]
                emit((
                    rule,
                    entries[ins[1]].op,
                    tkey[:offset] + ins[2] + tkey[offset + 4 :],
                    ("push", ins[3], tid_row),
                ))
            elif rule == "APP":
                emit((
                    rule,
                    ins[1],
                    pack_tid_cs(tid, ins[2]) + lpk + ins[3],
                    None,
                ))
            elif rule == "PULL":
                emit((
                    rule,
                    gentries[ins[1]].op,
                    tkey + ins[2],
                    None,
                ))
            elif rule == "CMT":
                emit((
                    rule,
                    None,
                    pack_tid_cs(tid, code_state_id(SKIP, thread.stack)),
                    ("cmt",),
                ))
            else:  # UNAPP — the saved continuation comes off the live flag
                flag = entries[-1].flag
                emit((
                    rule,
                    None,
                    pack_tid_cs(
                        tid, code_state_id(flag.saved_code, flag.saved_stack)
                    )
                    + lpk[:-4],
                    None,
                ))
        return tuple(out)

    def _successor_recipe(
        self,
        thread: Thread,
        include_backward: bool,
        pull_active: bool,
        pull_committed_only: bool,
        pull_budget: Optional[int],
    ) -> Tuple[Tuple, ...]:
        """The tid-independent expansion recipe of one thread
        configuration (see :meth:`successor_keys`): which rule instances
        are enabled, as instruction tuples carrying only interned codes,
        log positions and pre-packed byte patches.

        Everything recorded here is a pure function of the memo key —
        criterion decisions go through the payload-interned oracles
        (movers, denotations), positions through ``lgmap`` — so replaying
        a recipe under a different tid or owner row yields exactly the
        keys the unmemoized derivation would have produced.  Data that is
        *not* key-determined (operation identities, saved continuations,
        this state's owner row) never enters the recipe; the assembly
        loop reads it from the live state.
        """
        local = thread.local
        denots = self.denots
        out: List[Tuple] = []
        emit = out.append
        # APP — every step choice.
        result_log = denots.result_log
        allows_pid = denots.allows_pid
        for choice in sorted_choices(thread.code):
            call_node, continuation = choice
            try:
                ret = result_log(local, call_node.method, call_node.args)
            except SpecError:
                continue
            pid = payload_class_of(call_node.method, call_node.args, ret)
            if not allows_pid(local, pid):
                continue
            emit((
                "APP",
                choice,
                code_state_id(continuation, ret),
                pack_u32(pid << 2),
            ))
        # PUSH — every npshd entry.
        npshd = local.not_pushed_ops()
        if npshd:
            check_push = self._check_push
            index_of = local.index_of
            codes = local.codes()
            for op in npshd:
                if check_push(thread, op) is not None:
                    continue
                lidx = index_of(op)
                emit((
                    "PUSH",
                    lidx,
                    pack_u32((codes[lidx] & ~3) | 1),
                    pack_u32(payload_class_id(op) << 1),
                ))
        # PULL — every global entry not in L (per policy and budget).
        if pull_active and (
            pull_budget is None or len(local.pulled_ops()) < pull_budget
        ):
            check_pull = self._check_pull
            in_local = local._positions()
            for gidx, g_entry in enumerate(self.global_log.entries):
                op = g_entry.op
                if op.op_id in in_local:
                    continue
                if pull_committed_only and not g_entry.is_committed:
                    continue
                if check_pull(thread, op) is not None:
                    continue
                emit((
                    "PULL",
                    gidx,
                    pack_u32((payload_class_id(op) << 2) | 2),
                ))
        # CMT.
        if self._check_cmt(thread) is None:
            emit(("CMT",))
        if include_backward:
            codes = local.codes()
            # UNAPP (last entry only, by the rule's shape).
            if codes and codes[-1] & 3 == 0:
                emit(("UNAPP",))
            # UNPUSH — every pshd entry.
            pshd = local.pushed_ops()
            if pshd:
                check_unpush = self._check_unpush
                index_of = local.index_of
                gpos_of = self.global_log._positions()
                for op in pshd:
                    if check_unpush(thread, op) is not None:
                        continue
                    lidx = index_of(op)
                    emit((
                        "UNPUSH",
                        lidx,
                        gpos_of[op.op_id],
                        pack_u32(codes[lidx] & ~3),
                    ))
            # UNPULL — every pld entry.
            pld = local.pulled_ops()
            if pld:
                allowed_log = denots.allowed_log
                remove = local.remove
                index_of = local.index_of
                for op in pld:
                    if not allowed_log(remove(op)):
                        continue
                    emit(("UNPULL", index_of(op)))
        return tuple(out)

    # ------------------------------------------------- structural rules (Fig 6)

    def structural_steps(self, tid: int) -> Iterator[Tuple[str, "Machine"]]:
        """The NONDETL/NONDETR/LOOP/SEMI/SEMISKIP reductions for ``tid``.

        Yields ``(rule_name, successor)`` pairs.  SEMI recursion is folded
        into the traversal (the reduction type is inductive, Figure 6).
        """
        thread = self.thread(tid)
        for rule, new_code in _structural_code_steps(thread.code):
            new_thread = thread.evolve(code=new_code)
            yield rule, self._with(self._replace_thread(new_thread), self.global_log, changed_tid=tid)

    # -------------------------------------------------------------- inspection

    #: Figure 5 rule footprints — which components a rule instance reads
    #: and writes.  ``local`` rules touch only the acting thread's
    #: ``(c, σ, L)`` and are read by no other rule (no criterion of any
    #: rule inspects another thread's local log): they are independent of
    #: every rule instance on every other thread, which is what the model
    #: checker's ample-set reduction leans on.  ``global`` rules read or
    #: write ``G`` (their enabledness can change under other threads'
    #: moves).
    RULE_FOOTPRINT = {
        "APP": "local",
        "UNAPP": "local",
        "PUSH": "global",
        "UNPUSH": "global",
        "PULL": "global",
        "UNPULL": "local",  # writes only L; enabledness reads only L
        "CMT": "global",
        "END": "structural",  # removes the thread; reads only L
    }

    def nonlocal_move_enabled(
        self,
        tid: int,
        pull_allowed: bool = True,
        pull_committed_only: bool = False,
        pull_budget: Optional[int] = None,
        include_backward: bool = True,
    ) -> bool:
        """Whether thread ``tid`` has any enabled rule instance that reads
        or writes the global log (PUSH/PULL/CMT, and the backward
        UNPUSH/UNPULL when ``include_backward``).

        This is the ample-set eligibility probe: a thread whose enabled
        instances are *all* APP/UNAPP touches nothing another thread can
        observe (see :data:`RULE_FOOTPRINT`), so the checker may explore
        only that thread's moves at the current state.  UNPULL writes only
        the local log, but it is grouped with the global moves here: its
        *successor* changes which PULLs are within budget, and deferring a
        thread's own non-APP moves is exactly what the reduction must not
        do (an ample set contains every enabled move of its thread).

        Check-only (shares the rules' ``_check_*`` halves): no successor
        states, no exceptions, no fresh ids.  The ``pull_*`` parameters
        mirror the model checker's PULL enumeration policy so eligibility
        agrees exactly with what :func:`~repro.checking.model_checker.explore`
        would expand.
        """
        thread = self.thread(tid)
        entries = thread.local.entries
        # PUSH — any npshd entry whose criteria pass.
        for entry in entries:
            if entry.is_not_pushed and self._check_push(thread, entry.op) is None:
                return True
        # CMT.
        if self._check_cmt(thread) is None:
            return True
        if include_backward:
            # UNPUSH / UNPULL.
            for entry in entries:
                if entry.is_pushed and self._check_unpush(thread, entry.op) is None:
                    return True
                if entry.is_pulled and self._check_unpull(thread, entry.op) is None:
                    return True
        # PULL — most expensive probe, checked last.
        if pull_allowed and (
            pull_budget is None or len(thread.local.pulled_ops()) < pull_budget
        ):
            local = thread.local
            for g_entry in self.global_log:
                if g_entry.op in local:
                    continue
                if pull_committed_only and not g_entry.is_committed:
                    continue
                if self._check_pull(thread, g_entry.op) is None:
                    return True
        return False

    def enabled_rules(self, tid: int) -> List[str]:
        """Names of Figure 5 rules with at least one enabled instance for
        ``tid`` (used by the model checker and by tests).

        Runs only the check half of each rule: no successor states, no
        exception allocation, no fresh ids."""
        enabled: List[str] = []
        thread = self.thread(tid)
        choices = step(thread.code)
        if choices and any(self._check_app(thread, c) for c in choices):
            enabled.append("APP")
        entries = thread.local.entries
        if entries and entries[-1].is_not_pushed:
            enabled.append("UNAPP")
        if any(
            e.is_not_pushed and self._check_push(thread, e.op) is None for e in entries
        ):
            enabled.append("PUSH")
        if any(
            e.is_pushed and self._check_unpush(thread, e.op) is None for e in entries
        ):
            enabled.append("UNPUSH")
        if any(self._check_pull(thread, e.op) is None for e in self.global_log):
            enabled.append("PULL")
        if any(
            e.is_pulled and self._check_unpull(thread, e.op) is None for e in entries
        ):
            enabled.append("UNPULL")
        if self._check_cmt(thread) is None:
            enabled.append("CMT")
        return enabled

    def state_key(self) -> Tuple:
        """A hashable digest of the machine state (payload-level via the
        intern tables, so model checker visits are independent of id
        allocation order).

        Packed representation: ``(thread_key_bytes…, global_codes_bytes,
        owner_row_bytes)`` — see :mod:`repro.core.packed` for the layout
        and the decoder back to the PR-2 object-level key.  Computed at
        most once per (immutable) machine; thread digests are cached on
        the thread objects, so a successor state only re-digests the one
        thread a rule changed plus the global-log owner bytes.
        """
        key = self._skey
        if key is not None:
            return key
        src = self._skey_src
        if src is not None:
            # Incremental path: one thread changed; the global part of the
            # key is reused (local-only rule) or patched (owner_delta).
            parent_key, index, odelta = src
            parent_tkeys = parent_key[0]
            thread_keys = (
                parent_tkeys[:index]
                + (_thread_key(self.threads[index]),)
                + parent_tkeys[index + 1 :]
            )
            if odelta is None:
                rows, owner_row = parent_key[1], parent_key[2]
            else:
                kind = odelta[0]
                if kind == "push":
                    # One entry appended to G, owned by the pusher.
                    rows = parent_key[1] + pack_u32(odelta[2] << 1)
                    owner_row = parent_key[2] + pack_i32(odelta[1])
                elif kind == "unpush":
                    # The entry at global byte position ``4·arg`` withdrawn.
                    at = 4 * odelta[1]
                    rows = parent_key[1][:at] + parent_key[1][at + 4 :]
                    owner_row = parent_key[2][:at] + parent_key[2][at + 4 :]
                else:  # "cmt"
                    # The committer's entries flip to committed and stop
                    # being owned (its local log empties).
                    arg = odelta[1]
                    gcodes = unpack_codes(parent_key[1])
                    owners = unpack_owners(parent_key[2])
                    for i, o in enumerate(owners):
                        if o == arg:
                            gcodes[i] |= 1
                            owners[i] = -1
                    rows = gcodes.tobytes()
                    owner_row = owners.tobytes()
            key = self._skey = (thread_keys, rows, owner_row)
            self._skey_src = None
            return key
        owners: Dict[int, int] = {}
        for t in self.threads:
            tid = t.tid
            for op in t.local.own_ops():
                owners[op.op_id] = tid
        thread_keys = tuple(_thread_key(t) for t in self.threads)
        # The id-free global row codes are cached on the log node (shared
        # by every successor whose rule left G untouched); only the owner
        # row depends on the thread list.
        global_log = self.global_log
        owner_row = pack_owners(
            owners.get(i, -1) for i in global_log.id_row()
        )
        key = self._skey = (thread_keys, global_log.packed(), owner_row)
        return key

    def fingerprint(self) -> int:
        """The canonical fingerprint: the hash of :meth:`state_key`.

        Because the key (and each thread digest feeding it) is cached on
        immutable objects shared between a state and its successors, the
        fingerprint is maintained incrementally across transitions rather
        than recomputed from the full state.
        """
        return hash(self.state_key())


def _owner_of(machine: Machine, op: Op) -> int:
    for t in machine.threads:
        entry = t.local.entry_for(op)
        if entry is not None and entry.is_own:
            return t.tid
    return -1


def _structural_code_steps(code: Code) -> Iterator[Tuple[str, Code]]:
    if isinstance(code, Choice):
        yield "NONDETL", code.left
        yield "NONDETR", code.right
        return
    if isinstance(code, Star):
        yield "LOOP", Choice(Seq(code.body, code), SKIP)
        return
    if isinstance(code, Seq):
        if isinstance(code.first, Skip):
            yield "SEMISKIP", code.second
            return
        for rule, new_first in _structural_code_steps(code.first):
            yield f"SEMI:{rule}", seq_cont(new_first, code.second)
        return
    # Skip / Call / Tx have no structural reductions.
    return


# Typing helper (language.step returns a frozenset of pairs).
FrozenSetType = Iterable[Tuple[Call, Code]]
