"""The §5.3 invariants, executable.

The serializability proof rests on a family of invariants over machine
states (Lemmas 5.7–5.13).  The paper proves them once and for all; this
module makes each of them *checkable* on a concrete state so that the
model checker (and the property tests) can empirically confirm they hold
on every reachable state — which is precisely what a reproduction of a
semantics paper can measure.

All checkers return a list of human-readable violation strings (empty ⇒
invariant holds), so a failing model-checking run pinpoints the state and
the clause.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.logs import ops_minus
from repro.core.machine import Machine, Thread
from repro.core.ops import Op
from repro.core.precongruence import precongruent


def check_I_LG(machine: Machine) -> List[str]:
    """Lemma 5.7 — local flags agree with global membership:
    ``pshd`` entries are in ``G``; ``npshd`` entries are not."""
    violations = []
    for thread in machine.threads:
        violations.extend(check_I_LG_thread(machine, thread))
    return violations


def check_I_LG_thread(machine: Machine, thread: Thread) -> List[str]:
    violations = []
    gids = machine.global_log.ids()
    for entry in thread.local:
        if entry.is_pushed and entry.op.op_id not in gids:
            violations.append(
                f"I_LG: thread {thread.tid} pshd {entry.op.pretty()} not in G"
            )
        if entry.is_not_pushed and entry.op.op_id in gids:
            violations.append(
                f"I_LG: thread {thread.tid} npshd {entry.op.pretty()} in G"
            )
    return violations


def check_I_slideR(machine: Machine) -> List[str]:
    """Lemma 5.8 — an own uncommitted pushed operation ``op1`` occurring in
    ``G`` before another transaction's operation ``op2`` satisfies
    ``op1 ◁ op2`` (your uncommitted work moves right of everyone later)."""
    violations = []
    for thread in machine.threads:
        violations.extend(check_I_slideR_thread(machine, thread))
    return violations


def check_I_slideR_thread(machine: Machine, thread: Thread) -> List[str]:
    violations = []
    entries = machine.global_log.entries
    own = thread.own_op_ids()
    for i, e1 in enumerate(entries):
        if e1.is_committed or e1.op.op_id not in own:
            continue
        for e2 in entries[i + 1 :]:
            if e2.op.op_id in own:
                continue
            if not machine.movers.left_mover(e1.op, e2.op):
                violations.append(
                    f"I_slideR: thread {thread.tid}: {e1.op.pretty()} "
                    f"(gUCmt) before {e2.op.pretty()} but not ◁"
                )
    return violations


def check_I_reorderPUSH(machine: Machine) -> List[str]:
    """Lemma 5.10 — if a transaction pushed two of its own (uncommitted)
    operations out of local order (``m1`` before ``m2`` locally but ``m2``
    before ``m1`` in ``G``) then ``m2 ◁ m1``."""
    violations = []
    for thread in machine.threads:
        violations.extend(check_I_reorderPUSH_thread(machine, thread))
    return violations


def check_I_reorderPUSH_thread(machine: Machine, thread: Thread) -> List[str]:
    violations = []
    own_order = [op for op in thread.local.own_ops()]
    positions = {op.op_id: i for i, op in enumerate(own_order)}
    g_uncommitted = [
        e.op
        for e in machine.global_log
        if not e.is_committed and e.op.op_id in positions
    ]
    for gi, m2 in enumerate(g_uncommitted):
        for m1 in g_uncommitted[gi + 1 :]:
            # m2 precedes m1 in G; is the local order the opposite?
            if positions[m1.op_id] < positions[m2.op_id]:
                if not machine.movers.left_mover(m2, m1):
                    violations.append(
                        f"I_reorderPUSH: thread {thread.tid}: "
                        f"{m2.pretty()} pushed before {m1.pretty()} "
                        f"against local order but not ◁"
                    )
    return violations


def check_I_localOrder(machine: Machine) -> List[str]:
    """Lemma 5.12 — a pushed own operation ``m1`` moves left of every
    not-pushed own operation ``m2`` occurring *earlier* in the local log
    (``L = L1·[m2, npshd]·L2·[m1, pshd]·L3 ⇒ m1 ◁ m2``)."""
    violations = []
    for thread in machine.threads:
        violations.extend(check_I_localOrder_thread(machine, thread))
    return violations


def check_I_localOrder_thread(machine: Machine, thread: Thread) -> List[str]:
    violations = []
    entries = thread.local.entries
    for i, e2 in enumerate(entries):
        if not e2.is_not_pushed:
            continue
        for e1 in entries[i + 1 :]:
            if not e1.is_pushed:
                continue
            if not machine.movers.left_mover(e1.op, e2.op):
                violations.append(
                    f"I_localOrder: thread {thread.tid}: pushed "
                    f"{e1.op.pretty()} after unpushed {e2.op.pretty()} "
                    f"but not ◁"
                )
    return violations


def check_I_slidePushed(machine: Machine, thread: Thread) -> List[str]:
    """Lemma 5.9 — ``G ≼ (G ∖ ⌊L⌋_pshd) · (G ∩ ⌊L⌋_pshd)``: the thread's
    pushed operations can slide to the end of the global log."""
    g_ops = machine.global_log.all_ops()
    pushed = thread.local.pushed_ops()
    lhs = g_ops
    rhs = ops_minus(g_ops, pushed) + machine.global_log.intersect_ops(pushed)
    if not precongruent(machine.spec, lhs, rhs):
        return [
            f"I_slidePushed: thread {thread.tid}: G ⋠ (G∖⌊L⌋_pshd)·(G∩⌊L⌋_pshd)"
        ]
    return []


def check_I_chronPush(machine: Machine, thread: Thread) -> List[str]:
    """Lemma 5.11 — pushed operations can be re-serialised in local-log
    (chronological) order:
    ``(G∖⌊L⌋_pshd)·(G∩⌊L⌋_pshd) ≼ (G∖⌊L⌋_pshd)·⌊L⌋_pshd``."""
    g_ops = machine.global_log.all_ops()
    pushed = thread.local.pushed_ops()
    base = ops_minus(g_ops, pushed)
    lhs = base + machine.global_log.intersect_ops(pushed)
    rhs = base + pushed
    if not precongruent(machine.spec, lhs, rhs):
        return [
            f"I_chronPush: thread {thread.tid}: global-order pushes ⋠ "
            f"local-order pushes"
        ]
    return []


def check_I_localReorder(machine: Machine, thread: Thread) -> List[str]:
    """Lemma 5.13 — pushed-then-unpushed can be re-serialised into plain
    local-log order:
    ``(G∖⌊L⌋_pshd)·⌊L⌋_pshd·⌊L⌋_npshd ≼ (G∖⌊L⌋_pshd)·⌊L⌋_own``
    where ``⌊L⌋_own`` interleaves pushed and unpushed own operations in
    their local-log order (the paper's ``⌊L⌋^npshd_pshd``)."""
    g_ops = machine.global_log.all_ops()
    pushed = thread.local.pushed_ops()
    not_pushed = thread.local.not_pushed_ops()
    base = ops_minus(g_ops, pushed)
    lhs = base + pushed + not_pushed
    rhs = base + thread.local.own_ops()
    if not precongruent(machine.spec, lhs, rhs):
        return [
            f"I_localReorder: thread {thread.tid}: segregated own ops ⋠ "
            f"local-order own ops"
        ]
    return []


ALL_GLOBAL_INVARIANTS = (
    check_I_LG,
    check_I_slideR,
    check_I_reorderPUSH,
    check_I_localOrder,
)

ALL_THREAD_INVARIANTS = (
    check_I_slidePushed,
    check_I_chronPush,
    check_I_localReorder,
)


def check_all_invariants(machine: Machine) -> List[str]:
    """Run every §5.3 invariant on ``machine``; return all violations."""
    violations: List[str] = []
    for checker in ALL_GLOBAL_INVARIANTS:
        violations.extend(checker(machine))
    for thread in machine.threads:
        for thread_checker in ALL_THREAD_INVARIANTS:
            violations.extend(thread_checker(machine, thread))
    return violations


_PER_THREAD_CHECKERS = (
    check_I_LG_thread,
    check_I_slideR_thread,
    check_I_reorderPUSH_thread,
    check_I_localOrder_thread,
    check_I_slidePushed,
    check_I_chronPush,
    check_I_localReorder,
)

#: the shared all-clauses-hold vector (see _thread_invariant_vector)
_CLEAN_VECTOR = ((),) * len(_PER_THREAD_CHECKERS)


def _thread_invariant_vector(
    machine: Machine, thread: Thread, cache: dict
) -> Tuple[List[str], ...]:
    """All seven invariants restricted to one thread, memoized.

    Every §5.3 invariant decomposes into per-thread clauses whose truth
    depends only on the thread's local log, the global log, and which
    global entries the thread owns — never on codes, stacks or the other
    threads' logs.  The memo key is that dependency set at *payload* level
    (the same abstraction as the machine's canonical state key), packed to
    interned byte columns so a revisit costs three pointer loads and one
    bytes-hash lookup; the model checker re-pays an invariant sweep only
    when a thread's actual log configuration is new, not once per product
    state of the scope.
    """
    local = thread.local
    global_log = machine.global_log
    key = (
        thread.tid,
        local.packed(),
        global_log.packed(),
        global_log.own_bytes(local.ids()),
    )
    got = cache.get(key)
    if got is None:
        got = tuple(
            checker(machine, thread) for checker in _PER_THREAD_CHECKERS
        )
        if not any(got):
            # The overwhelmingly common case — every clause holds — maps
            # to one shared sentinel so the sweep can skip the merge loops
            # with a single identity check per thread.
            got = _CLEAN_VECTOR
        cache[key] = got
    return got


def check_all_invariants_cached(machine: Machine, cache: dict) -> List[str]:
    """:func:`check_all_invariants`, memoized per thread through ``cache``
    (a plain dict owned by the caller, e.g. one per model-checking run).
    Violations come back in exactly the order of the uncached checker."""
    clean = True
    vectors = []
    for thread in machine.threads:
        vector = _thread_invariant_vector(machine, thread, cache)
        if vector is not _CLEAN_VECTOR:
            clean = False
        vectors.append(vector)
    if clean:
        return []
    violations: List[str] = []
    for index in range(len(ALL_GLOBAL_INVARIANTS)):
        for vector in vectors:
            violations.extend(vector[index])
    base = len(ALL_GLOBAL_INVARIANTS)
    for vector in vectors:
        for index in range(base, len(_PER_THREAD_CHECKERS)):
            violations.extend(vector[index])
    return violations
