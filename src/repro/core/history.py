"""Transaction histories — what drivers record, what checkers consume.

The machine itself clears a thread's local log at CMT (Figure 5), so the
association "this committed transaction consisted of these operations" is
runtime knowledge.  TM drivers (:mod:`repro.tm`) record a
:class:`TxRecord` per transaction attempt into a :class:`History`; the
serializability and opacity checkers then work over the history together
with the machine's final global log.

Timestamps are logical (a shared monotone counter), giving the real-time
precedence order needed for *strict* serializability checking: if
transaction A committed before B began, A must precede B in any admissible
serialization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import AbortKind
from repro.core.ops import Op


class TxStatus(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TxRecord:
    """One transaction attempt.

    ``ops`` are the transaction's *own* operations in local-log order;
    ``observed`` additionally interleaves pulled operations (the local view
    used by the opacity checker); ``pulled_uncommitted`` records
    dependencies on other transactions' uncommitted work (§6.5).

    ``abort_reason`` is the free-text message for humans; ``abort_kind``
    is the structured classification metrics aggregate on (never parse the
    reason string).
    """

    tx_id: int
    thread_tid: int
    begin_time: int
    status: TxStatus = TxStatus.ACTIVE
    end_time: Optional[int] = None
    ops: Tuple[Op, ...] = ()
    observed: Tuple[Op, ...] = ()
    pulled_uncommitted: Tuple[Op, ...] = ()
    abort_reason: Optional[str] = None
    abort_kind: Optional[AbortKind] = None
    retries_of: Optional[int] = None

    @property
    def committed(self) -> bool:
        return self.status is TxStatus.COMMITTED


class History:
    """An append-only record of transaction attempts."""

    def __init__(self) -> None:
        self._records: List[TxRecord] = []
        self._clock = itertools.count()
        self._by_id: Dict[int, TxRecord] = {}

    def now(self) -> int:
        return next(self._clock)

    def begin(self, thread_tid: int, retries_of: Optional[int] = None) -> TxRecord:
        record = TxRecord(
            tx_id=len(self._records),
            thread_tid=thread_tid,
            begin_time=self.now(),
            retries_of=retries_of,
        )
        self._records.append(record)
        self._by_id[record.tx_id] = record
        return record

    def commit(
        self,
        record: TxRecord,
        ops: Sequence[Op],
        observed: Sequence[Op] = (),
        pulled_uncommitted: Sequence[Op] = (),
    ) -> None:
        record.status = TxStatus.COMMITTED
        record.end_time = self.now()
        record.ops = tuple(ops)
        record.observed = tuple(observed) or tuple(ops)
        record.pulled_uncommitted = tuple(pulled_uncommitted)

    def abort(
        self,
        record: TxRecord,
        reason: str,
        observed: Sequence[Op] = (),
        pulled_uncommitted: Sequence[Op] = (),
        kind: AbortKind = AbortKind.EXPLICIT,
    ) -> None:
        record.status = TxStatus.ABORTED
        record.end_time = self.now()
        record.observed = tuple(observed)
        record.pulled_uncommitted = tuple(pulled_uncommitted)
        record.abort_reason = reason
        record.abort_kind = kind

    # -- views ---------------------------------------------------------------

    @property
    def records(self) -> Tuple[TxRecord, ...]:
        return tuple(self._records)

    def committed_records(self) -> Tuple[TxRecord, ...]:
        return tuple(r for r in self._records if r.committed)

    def aborted_records(self) -> Tuple[TxRecord, ...]:
        return tuple(r for r in self._records if r.status is TxStatus.ABORTED)

    def commit_count(self) -> int:
        return len(self.committed_records())

    def abort_count(self) -> int:
        return len(self.aborted_records())

    def precedes(self, a: TxRecord, b: TxRecord) -> bool:
        """Real-time precedence: ``a`` ended before ``b`` began."""
        return a.end_time is not None and a.end_time < b.begin_time

    def real_time_pairs(self) -> Iterable[Tuple[int, int]]:
        """All (tx_id, tx_id) real-time precedence pairs among committed
        transactions."""
        committed = self.committed_records()
        for a in committed:
            for b in committed:
                if a.tx_id != b.tx_id and self.precedes(a, b):
                    yield a.tx_id, b.tx_id
