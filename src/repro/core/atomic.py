"""The atomic semantics (Figure 3) — the specification machine.

Transactions execute *instantly*, with no interleaving: the big-step
relation ``(c, σ), ℓ ⇓ σ', ℓ'`` (rules BSSTEP/BSFIN) scans the
nondeterminism of a transaction body via ``step``/``fin`` and extends the
shared log with operations the sequential specification allows.  The
machine-level relation ``A, ℓ →a* A', ℓ'`` interleaves whole transactions.

Because the model is nondeterministic, the executable form enumerates: the
generators below yield every behaviour up to a fuel bound (needed only for
``(c)*`` loops — loop-free programs enumerate completely).  The
serializability checkers (:mod:`repro.core.serializability`,
:mod:`repro.checking.model_checker`) consume these enumerations as the
right-hand side of the simulation of Theorem 5.17.

Operation identifiers are drawn from a local generator per enumeration, so
results are compared by *payload sequence* (method/args/ret triples), which
is exactly what the precongruence ``≼`` observes.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.language import Code, Skip, Tx, fin, step
from repro.core.errors import SpecError
from repro.core.ops import IdGenerator, Op
from repro.core.spec import SequentialSpec

Payload = Tuple[str, Tuple, object]


def payload_of(op: Op) -> Payload:
    return (op.method, op.args, op.ret)


def payloads(ops: Sequence[Op]) -> Tuple[Payload, ...]:
    return tuple(payload_of(op) for op in ops)


def bigstep(
    spec: SequentialSpec,
    code: Code,
    log: Tuple[Op, ...],
    ids: IdGenerator,
    fuel: int = 16,
) -> Iterator[Tuple[Op, ...]]:
    """Enumerate ``⇓`` outcomes: every operation suffix a complete run of
    ``code`` may append to ``log``.

    BSFIN contributes the empty suffix whenever ``fin(code)``; BSSTEP
    contributes, for each ``(m, c') ∈ step(code)``, the suffixes of ``c'``
    after an allowed record for ``m``.  Return values are synthesised with
    ``spec.result`` so each appended record is allowed by construction;
    specs whose ``result`` raises on a disallowed log prune that branch.

    ``fuel`` bounds the number of BSSTEP applications on a path (only
    ``(c)*`` can exceed any bound).  Duplicate payload-suffixes arising from
    different nondeterministic paths are deduplicated.
    """
    seen: Set[Tuple[Payload, ...]] = set()
    for suffix in _bigstep_raw(spec, code, log, ids, fuel):
        key = payloads(suffix)
        if key not in seen:
            seen.add(key)
            yield suffix


def _bigstep_raw(
    spec: SequentialSpec,
    code: Code,
    log: Tuple[Op, ...],
    ids: IdGenerator,
    fuel: int,
) -> Iterator[Tuple[Op, ...]]:
    if fin(code):
        yield ()
    if fuel <= 0:
        return
    for call_node, cont in step(code):
        try:
            ret = spec.result(log, call_node.method, call_node.args)
        except SpecError:
            continue
        op = Op(call_node.method, call_node.args, ret, ids.fresh())
        extended = log + (op,)
        if not spec.allowed(extended):
            continue
        for rest in _bigstep_raw(spec, cont, extended, ids, fuel - 1):
            yield (op,) + rest


def run_transaction_atomically(
    spec: SequentialSpec,
    transaction: Code,
    log: Tuple[Op, ...],
    ids: Optional[IdGenerator] = None,
    fuel: int = 16,
) -> Iterator[Tuple[Op, ...]]:
    """AM_RUNTX: all complete-log outcomes of running ``tx c`` at ``log``."""
    body = transaction.body if isinstance(transaction, Tx) else transaction
    ids = ids or IdGenerator()
    for suffix in bigstep(spec, body, log, ids, fuel):
        yield log + suffix


def atomic_final_logs(
    spec: SequentialSpec,
    programs: Sequence[Code],
    fuel: int = 16,
    max_states: int = 200_000,
) -> FrozenSet[Tuple[Payload, ...]]:
    """Every final shared-log payload sequence of the atomic machine
    ``A, ℓ →a* [], ℓ'`` started from empty log, where ``A = programs``.

    Thread programs may be single transactions or sequences of them; the
    machine nondeterministically interleaves whole transactions (AMS_ONE /
    AMS_END).  Exploration is exhaustive up to ``fuel`` per transaction,
    memoised on (thread codes, payload log).
    """
    ids = IdGenerator()
    initial = (tuple(programs), ())
    seen: Set[Tuple[Tuple[Code, ...], Tuple[Payload, ...]]] = set()
    finals: Set[Tuple[Payload, ...]] = set()
    stack: List[Tuple[Tuple[Code, ...], Tuple[Op, ...]]] = [initial]
    while stack:
        codes, log = stack.pop()
        key = (codes, payloads(log))
        if key in seen:
            continue
        seen.add(key)
        if len(seen) > max_states:
            raise MemoryError("atomic exploration exceeded max_states")
        live = tuple(c for c in codes if not isinstance(c, Skip))
        if not live:
            finals.add(payloads(log))
            continue
        for i, code in enumerate(codes):
            if isinstance(code, Skip):
                continue
            for next_code, next_log in _atomic_thread_steps(
                spec, code, log, ids, fuel
            ):
                new_codes = codes[:i] + (next_code,) + codes[i + 1 :]
                stack.append((new_codes, next_log))
    return frozenset(finals)


def _atomic_thread_steps(
    spec: SequentialSpec,
    code: Code,
    log: Tuple[Op, ...],
    ids: IdGenerator,
    fuel: int,
) -> Iterator[Tuple[Code, Tuple[Op, ...]]]:
    """One ``→a`` step of a single thread (Figure 3, inductive on ``c``)."""
    from repro.core.language import Choice, Seq, Star, SKIP, seq_cont

    if isinstance(code, Tx):
        # AM_RUNTX: the whole transaction runs via ⇓.
        for new_log in run_transaction_atomically(spec, code, log, ids, fuel):
            yield SKIP, new_log
        return
    if isinstance(code, Choice):
        yield code.left, log
        yield code.right, log
        return
    if isinstance(code, Star):
        # AM_LOOP: unfold to (body ; (body)*) + skip.
        yield Choice(Seq(code.body, code), SKIP), log
        return
    if isinstance(code, Seq):
        if isinstance(code.first, Skip):
            yield code.second, log
            return
        for next_first, next_log in _atomic_thread_steps(
            spec, code.first, log, ids, fuel
        ):
            yield seq_cont(next_first, code.second), next_log
        return
    if isinstance(code, Skip):
        return
    raise SpecError(f"atomic machine cannot step code {code!r}")


def serial_outcomes_of_transactions(
    spec: SequentialSpec,
    transactions: Sequence[Code],
    fuel: int = 16,
) -> FrozenSet[Tuple[Payload, ...]]:
    """All payload logs obtainable by running ``transactions`` serially in
    every order (a convenience wrapper: each program is one transaction).
    """
    return atomic_final_logs(spec, transactions, fuel=fuel)
