"""Operation records (§3, "Operations and logs").

An operation record ``op = ⟨m, σ1, σ2, id⟩`` is a tuple of the method name
``m``, the thread-local pre-stack ``σ1`` (method arguments), the post-stack
``σ2`` (return values) and a globally unique identifier ``id``.

We realise the stacks as immutable tuples so operations are hashable and can
be used as log entries, dictionary keys and members of frozen sets.  Log
membership in the paper is *by id* (the ``∈``/``∖``/``⊆`` liftings in §4 all
compare ids), which :class:`Op` mirrors: two records with the same id are
the same operation regardless of payload, and constructing two live records
with the same id is a :class:`~repro.core.errors.LogError`-grade driver bug
that :class:`IdGenerator` makes impossible by construction.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Tuple


@dataclass(frozen=True)
class Op:
    """An operation record ``⟨m, σ1, σ2, id⟩``.

    Parameters
    ----------
    method:
        The operation name ``m`` (e.g. ``"put"``, ``"read"``).
    args:
        The pre-stack ``σ1``: the arguments the method was invoked with.
    ret:
        The post-stack ``σ2``: the value(s) the method returned.  ``None``
        models void methods.
    op_id:
        Globally unique identifier.  Equality and hashing of :class:`Op`
        deliberately use *only* this field, mirroring the paper's id-based
        log liftings.
    """

    method: str
    args: Tuple[Any, ...]
    ret: Any
    op_id: int

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Op):
            return NotImplemented
        return self.op_id == other.op_id

    def __hash__(self) -> int:
        return hash(self.op_id)

    def same_payload(self, other: "Op") -> bool:
        """Structural comparison ignoring the id (used by tests and by the
        atomic-machine simulation, which re-executes methods afresh)."""
        return (
            self.method == other.method
            and self.args == other.args
            and self.ret == other.ret
        )

    def with_ret(self, ret: Any) -> "Op":
        """A copy of this record with post-stack ``ret`` (same id).

        Used when a method's return value is only learned after the record
        was speculatively created.
        """
        return Op(self.method, self.args, ret, self.op_id)

    def pretty(self) -> str:
        """Human-readable rendering, e.g. ``put('a', 5) -> None #12``."""
        arg_text = ", ".join(repr(a) for a in self.args)
        return f"{self.method}({arg_text}) -> {self.ret!r} #{self.op_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.pretty()})"


class IdGenerator:
    """Source of fresh operation ids (the paper's ``fresh(id)`` predicate).

    Thread-safe so that drivers running transactions from real threads (the
    examples do, the model checker does not) still get globally unique ids.
    """

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._issued: set = set()

    def fresh(self) -> int:
        """Return an id never returned before by this generator."""
        with self._lock:
            new_id = next(self._counter)
            self._issued.add(new_id)
            return new_id

    def is_issued(self, op_id: int) -> bool:
        """Whether ``op_id`` came from this generator (for diagnostics)."""
        with self._lock:
            return op_id in self._issued


def make_op(
    method: str,
    args: Iterable[Any] = (),
    ret: Any = None,
    ids: Optional[IdGenerator] = None,
    op_id: Optional[int] = None,
) -> Op:
    """Convenience constructor for operation records.

    Exactly one of ``ids`` / ``op_id`` should be supplied; tests that only
    care about payloads may omit both and receive ids from a shared module
    generator (still unique within the process).
    """
    if ids is not None and op_id is not None:
        raise ValueError("pass either `ids` or `op_id`, not both")
    if op_id is None:
        op_id = (ids or _MODULE_IDS).fresh()
    return Op(method, tuple(args), ret, op_id)


_MODULE_IDS = IdGenerator(start=1_000_000)


@dataclass(frozen=True)
class OpClass:
    """The payload of an operation without its identity.

    Mover/commutativity relations are functions of payloads, not ids, so the
    precongruence machinery memoises on :class:`OpClass` keys.
    :meth:`of` interns instances per payload, so repeated queries over the
    same payloads reuse one object instead of allocating per call.
    """

    method: str
    args: Tuple[Any, ...]
    ret: Any = field(default=None)

    @staticmethod
    def of(op: Op) -> "OpClass":
        key = (op.method, op.args, op.ret)
        cached = _OPCLASS_INTERN.get(key)
        if cached is None:
            cached = _OPCLASS_INTERN[key] = OpClass(op.method, op.args, op.ret)
        return cached


_OPCLASS_INTERN: dict = {}

# ---------------------------------------------------------------------------
# Payload classes (the incremental kernel's canonical payload ids)
# ---------------------------------------------------------------------------

#: registry ``(method, args, ret) -> small int``.  Two operations share a
#: payload-class id iff their payloads are equal, so id-renamed logs map to
#: identical key tuples — the property the denotation cache, the mover memo
#: and the model checker's canonical state keys all rely on.
_PAYLOAD_CLASSES: dict = {}


def payload_class_id(op: Op) -> int:
    """The canonical small-int id of ``op``'s payload class.

    The id is cached on the operation record itself (a private memo slot;
    :meth:`Op.with_ret` returns a *new* record, so a changed payload can
    never see a stale id).  Payload-class ids are process-local: they are
    stable within a run but must not be persisted or compared across
    processes.
    """
    try:
        return op._payload_class  # type: ignore[attr-defined]
    except AttributeError:
        pass
    key = (op.method, op.args, op.ret)
    pid = _PAYLOAD_CLASSES.get(key)
    if pid is None:
        pid = _PAYLOAD_CLASSES[key] = len(_PAYLOAD_CLASSES)
    object.__setattr__(op, "_payload_class", pid)
    return pid
