"""Operation records (§3, "Operations and logs").

An operation record ``op = ⟨m, σ1, σ2, id⟩`` is a tuple of the method name
``m``, the thread-local pre-stack ``σ1`` (method arguments), the post-stack
``σ2`` (return values) and a globally unique identifier ``id``.

We realise the stacks as immutable tuples so operations are hashable and can
be used as log entries, dictionary keys and members of frozen sets.  Log
membership in the paper is *by id* (the ``∈``/``∖``/``⊆`` liftings in §4 all
compare ids), which :class:`Op` mirrors: two records with the same id are
the same operation regardless of payload, and constructing two live records
with the same id is a :class:`~repro.core.errors.LogError`-grade driver bug
that :class:`IdGenerator` makes impossible by construction.
"""

from __future__ import annotations

import itertools
import threading
from os import getpid
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Tuple


@dataclass(frozen=True)
class Op:
    """An operation record ``⟨m, σ1, σ2, id⟩``.

    Parameters
    ----------
    method:
        The operation name ``m`` (e.g. ``"put"``, ``"read"``).
    args:
        The pre-stack ``σ1``: the arguments the method was invoked with.
    ret:
        The post-stack ``σ2``: the value(s) the method returned.  ``None``
        models void methods.
    op_id:
        Globally unique identifier.  Equality and hashing of :class:`Op`
        deliberately use *only* this field, mirroring the paper's id-based
        log liftings.
    """

    method: str
    args: Tuple[Any, ...]
    ret: Any
    op_id: int

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Op):
            return NotImplemented
        return self.op_id == other.op_id

    def __hash__(self) -> int:
        return hash(self.op_id)

    def same_payload(self, other: "Op") -> bool:
        """Structural comparison ignoring the id (used by tests and by the
        atomic-machine simulation, which re-executes methods afresh)."""
        return (
            self.method == other.method
            and self.args == other.args
            and self.ret == other.ret
        )

    def with_ret(self, ret: Any) -> "Op":
        """A copy of this record with post-stack ``ret`` (same id).

        Used when a method's return value is only learned after the record
        was speculatively created.
        """
        return Op(self.method, self.args, ret, self.op_id)

    def pretty(self) -> str:
        """Human-readable rendering, e.g. ``put('a', 5) -> None #12``."""
        arg_text = ", ".join(repr(a) for a in self.args)
        return f"{self.method}({arg_text}) -> {self.ret!r} #{self.op_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.pretty()})"


class IdGenerator:
    """Source of fresh operation ids (the paper's ``fresh(id)`` predicate).

    Thread-safe so that drivers running transactions from real threads (the
    examples do, the model checker does not) still get globally unique ids.
    """

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._issued: set = set()

    def fresh(self) -> int:
        """Return an id never returned before by this generator."""
        with self._lock:
            new_id = next(self._counter)
            self._issued.add(new_id)
            return new_id

    def is_issued(self, op_id: int) -> bool:
        """Whether ``op_id`` came from this generator (for diagnostics)."""
        with self._lock:
            return op_id in self._issued


def make_op(
    method: str,
    args: Iterable[Any] = (),
    ret: Any = None,
    ids: Optional[IdGenerator] = None,
    op_id: Optional[int] = None,
) -> Op:
    """Convenience constructor for operation records.

    Exactly one of ``ids`` / ``op_id`` should be supplied; tests that only
    care about payloads may omit both and receive ids from a shared module
    generator (still unique within the process).
    """
    if ids is not None and op_id is not None:
        raise ValueError("pass either `ids` or `op_id`, not both")
    if op_id is None:
        op_id = (ids or _MODULE_IDS).fresh()
    return Op(method, tuple(args), ret, op_id)


_MODULE_IDS = IdGenerator(start=1_000_000)


@dataclass(frozen=True)
class OpClass:
    """The payload of an operation without its identity.

    Mover/commutativity relations are functions of payloads, not ids, so the
    precongruence machinery memoises on :class:`OpClass` keys.
    :meth:`of` interns instances per payload, so repeated queries over the
    same payloads reuse one object instead of allocating per call.
    """

    method: str
    args: Tuple[Any, ...]
    ret: Any = field(default=None)

    @staticmethod
    def of(op: Op) -> "OpClass":
        key = (op.method, op.args, op.ret)
        cached = _OPCLASS_INTERN.get(key)
        if cached is None:
            cached = _OPCLASS_INTERN[key] = OpClass(op.method, op.args, op.ret)
        return cached


_OPCLASS_INTERN: dict = {}

# ---------------------------------------------------------------------------
# Intern tables (the packed kernel's canonical small-int codes)
# ---------------------------------------------------------------------------

#: registry ``(method, args, ret) -> small int``.  Two operations share a
#: payload-class id iff their payloads are equal, so id-renamed logs map to
#: identical key tuples — the property the denotation cache, the mover memo
#: and the model checker's canonical state keys all rely on.
_PAYLOAD_CLASSES: dict = {}

#: reverse table ``pid -> (method, args, ret)`` — lets packed consumers
#: (the POR canonicalizer, the parallel explorer's cross-process digests,
#: the identity tests) decode interned codes back to payload level.
_PAYLOAD_LIST: list = []


def payload_class_of(method: str, args: Tuple[Any, ...], ret: Any) -> int:
    """Intern a payload triple to its dense small-int class id.

    The row-level entry point: key derivations and the reduction layer
    work on id-free rows rather than :class:`Op` records, so they intern
    without allocating a probe operation.  Ids are process-local (stable
    within a run, never persisted or compared across processes).
    """
    key = (method, args, ret)
    pid = _PAYLOAD_CLASSES.get(key)
    if pid is None:
        pid = _PAYLOAD_CLASSES[key] = len(_PAYLOAD_CLASSES)
        _PAYLOAD_LIST.append(key)
    return pid


def payload_of(pid: int) -> Tuple[str, Tuple[Any, ...], Any]:
    """The ``(method, args, ret)`` triple interned as class ``pid``."""
    return _PAYLOAD_LIST[pid]


def payload_class_id(op: Op) -> int:
    """The canonical small-int id of ``op``'s payload class.

    The id is cached on the operation record itself (a private memo slot;
    :meth:`Op.with_ret` returns a *new* record, so a changed payload can
    never see a stale id).  Payload-class ids are process-local: they are
    stable within a run but must not be persisted or compared across
    processes.
    """
    try:
        return op._payload_class  # type: ignore[attr-defined]
    except AttributeError:
        pass
    pid = payload_class_of(op.method, op.args, op.ret)
    object.__setattr__(op, "_payload_class", pid)
    return pid


# -- code states ------------------------------------------------------------

#: registry ``(code, stack) -> small int``.  A thread's control component
#: — its remaining program and local stack — compares structurally in
#: state keys; interning it makes that comparison a one-int equality and
#: skips re-hashing the (recursively hashed) code AST per visit.
_CODE_STATES: dict = {}

#: reverse table ``csid -> (code, stack)``.
_CODE_STATE_LIST: list = []


def code_state_id(code: Any, stack: Any) -> int:
    """Intern a ``(code, stack)`` control state to a dense small int.

    A per-code attribute memo (``stack -> csid``) makes the common case —
    re-deriving keys for the same code node — a dict hit that never hashes
    the AST; the structural registry behind it guarantees that distinct
    code objects with equal structure share one id (state keys compare by
    structure, not object identity).

    The memo is tagged with the owning process's pid: code ASTs travel
    across process boundaries (parallel-checker snapshots, fuzz jobs) and
    a pickled memo carries the *sender's* csids, which mean nothing — and
    may be out of range — against this process's tables.  A foreign tag
    just rebuilds the memo against the local registry.
    """
    pid = getpid()
    try:
        owner, memo = code._cs_memo
        if owner != pid:
            raise AttributeError
    except (AttributeError, TypeError, ValueError):
        memo = {}
        object.__setattr__(code, "_cs_memo", (pid, memo))
    csid = memo.get(stack)
    if csid is None:
        key = (code, stack)
        csid = _CODE_STATES.get(key)
        if csid is None:
            csid = _CODE_STATES[key] = len(_CODE_STATES)
            _CODE_STATE_LIST.append(key)
        memo[stack] = csid
    return csid


def code_state_of(csid: int) -> Tuple[Any, Any]:
    """The ``(code, stack)`` pair interned as control state ``csid``."""
    return _CODE_STATE_LIST[csid]


def intern_stats() -> dict:
    """Sizes of the process-wide intern tables (the ``intern.*`` gauges
    surfaced by the kernel benchmark and documented in OBSERVABILITY.md)."""
    return {
        "intern.payload_classes": len(_PAYLOAD_CLASSES),
        "intern.code_states": len(_CODE_STATES),
    }
