"""Packed key codec: byte-level state keys and their object-level twins.

The packed kernel re-represents the incremental kernel's state keys as
byte strings over interned small-int codes (see DESIGN.md, "Packed
kernel").  This module is the single place that knows the bit layout;
everything else goes through the helpers here.

Layout
------
* **Local row code** (uint32 LE): ``(payload_class_id << 2) | kind`` with
  kind ``0 = npshd``, ``1 = pshd``, ``2 = pld`` — one code per local-log
  entry, in log order.
* **Global row code** (uint32 LE): ``(payload_class_id << 1) | committed``
  — one code per global-log entry, in log order.
* **Owner row** (int32 LE): owning thread id per global entry, ``-1`` when
  unowned (committed or foreign).
* **Thread key** (bytes): ``pack("<ii", tid, code_state_id) + local_codes``.
* **State key**: ``(tuple_of_thread_key_bytes, global_codes, owner_row)`` —
  the same three-part shape as the PR-2 object-level key, so the
  incremental ``_skey_src`` patching in :mod:`repro.core.machine` carries
  over unchanged.

Because every code round-trips through the intern tables in
:mod:`repro.core.ops`, packed keys decode back to the PR-2 object-level
structure exactly.  The POR canonicalizer and the parallel explorer's
cross-process digests rely on that: intern ids are process-local, so any
consumer that needs process-independent or payload-level meaning decodes
first (:func:`decode_node_key`) and re-encodes after
(:func:`encode_node_key`).
"""

from __future__ import annotations

from array import array
from struct import Struct
from typing import Any, Iterable, Tuple

from repro.core.ops import (
    code_state_id,
    code_state_of,
    payload_class_of,
    payload_of,
)

# Flag kinds, in the packed order.  KIND_NAMES inverts to the PR-2 flag-row
# strings so decoded keys are byte-for-byte the old object-level tuples.
NPSHD = 0
PSHD = 1
PLD = 2
KIND_NAMES = ("npshd", "pshd", "pld")
KIND_CODES = {name: code for code, name in enumerate(KIND_NAMES)}

_U32 = Struct("<I")
_I32 = Struct("<i")
_TID_CS = Struct("<ii")

pack_u32 = _U32.pack
pack_i32 = _I32.pack
pack_tid_cs = _TID_CS.pack
unpack_tid_cs = _TID_CS.unpack

# The codec assumes 4-byte array items for the bulk paths; this holds on
# every platform CPython supports, but fail loudly rather than corrupt keys.
if array("I").itemsize != 4 or array("i").itemsize != 4:  # pragma: no cover
    raise RuntimeError("packed kernel requires 4-byte array('I')/array('i')")


def pack_codes(codes: Iterable[int]) -> bytes:
    """Pack an iterable of uint32 row codes into little-endian bytes."""
    return array("I", codes).tobytes()


def unpack_codes(data: bytes) -> "array[int]":
    """Unpack uint32 row-code bytes back into an integer array."""
    return array("I", data)


def pack_owners(owners: Iterable[int]) -> bytes:
    """Pack an iterable of int32 owner tids (``-1`` = unowned)."""
    return array("i", owners).tobytes()


def unpack_owners(data: bytes) -> "array[int]":
    """Unpack int32 owner-row bytes back into an integer array."""
    return array("i", data)


def local_row_code(method: str, args: Tuple[Any, ...], ret: Any, kind: int) -> int:
    """The packed code of one local-log row."""
    return (payload_class_of(method, args, ret) << 2) | kind


def global_row_code(method: str, args: Tuple[Any, ...], ret: Any, committed: bool) -> int:
    """The packed code of one global-log row."""
    return (payload_class_of(method, args, ret) << 1) | (1 if committed else 0)


# ---------------------------------------------------------------------------
# Decoding packed keys back to PR-2 object-level keys
# ---------------------------------------------------------------------------


def decode_thread_key(tkey: bytes) -> Tuple[Any, ...]:
    """Decode one packed thread key to ``(tid, code, stack, flag_rows)``."""
    tid, csid = unpack_tid_cs(tkey[:8])
    code, stack = code_state_of(csid)
    frows = []
    for c in array("I", tkey[8:]):
        method, args, ret = payload_of(c >> 2)
        frows.append((method, args, ret, KIND_NAMES[c & 3]))
    return (tid, code, stack, tuple(frows))


def decode_global_rows(gpacked: bytes) -> Tuple[Tuple[Any, ...], ...]:
    """Decode packed global codes to ``((method, args, ret, committed), ...)``."""
    rows = []
    for c in array("I", gpacked):
        method, args, ret = payload_of(c >> 1)
        rows.append((method, args, ret, bool(c & 1)))
    return tuple(rows)


def decode_state_key(skey: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Decode a packed machine state key to the PR-2 object-level shape
    ``(thread_keys, payload_rows, owner_row)``."""
    tkeys, gpacked, opacked = skey
    return (
        tuple(decode_thread_key(tb) for tb in tkeys),
        decode_global_rows(gpacked),
        tuple(array("i", opacked)),
    )


def decode_node_key(nkey: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Decode a packed checker node key ``(state_key, committed)``."""
    skey, committed = nkey
    return (decode_state_key(skey), committed)


# ---------------------------------------------------------------------------
# Encoding object-level keys into packed keys
# ---------------------------------------------------------------------------


def encode_thread_key(tkey: Tuple[Any, ...]) -> bytes:
    """Encode ``(tid, code, stack, flag_rows)`` to packed thread-key bytes."""
    tid, code, stack, frows = tkey
    header = pack_tid_cs(tid, code_state_id(code, stack))
    if not frows:
        return header
    kinds = KIND_CODES
    return header + array(
        "I",
        [
            (payload_class_of(method, args, ret) << 2) | kinds[kind]
            for method, args, ret, kind in frows
        ],
    ).tobytes()


def encode_state_key(skey: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Encode an object-level ``(thread_keys, payload_rows, owner_row)``."""
    tkeys, rows, owner_row = skey
    return (
        tuple(encode_thread_key(tb) for tb in tkeys),
        array(
            "I",
            [
                (payload_class_of(method, args, ret) << 1) | (1 if committed else 0)
                for method, args, ret, committed in rows
            ],
        ).tobytes(),
        array("i", owner_row).tobytes(),
    )


def encode_node_key(nkey: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Encode an object-level checker node key ``(state_key, committed)``."""
    skey, committed = nkey
    return (encode_state_key(skey), committed)


# ---------------------------------------------------------------------------
# Reference key (the PR-2 object-level digest, recomputed from scratch)
# ---------------------------------------------------------------------------


def reference_state_key(machine: Any) -> Tuple[Any, ...]:
    """The PR-2 object-level state key, recomputed from machine contents.

    Ignores every cache and every packed column: walks the live objects
    the way the incremental kernel's full-path ``state_key`` did.  The
    cross-representation identity tests and the ``repro perf`` packed tier
    assert ``decode_state_key(machine.state_key()) == reference_state_key(machine)``.
    """
    owners: dict = {}
    for thread in machine.threads:
        for op in thread.local.own_ops():
            owners[op.op_id] = thread.tid
    global_log = machine.global_log
    return (
        tuple(
            (t.tid, t.code, t.stack, t.local.flag_rows()) for t in machine.threads
        ),
        global_log.payload_rows(),
        tuple(owners.get(i, -1) for i in global_log.id_row()),
    )


def packed_stats(machine: Any = None) -> dict:
    """``packed.*`` gauges: the packed kernel's memo populations.

    Pass an exploration's root :class:`~repro.core.machine.Machine` —
    the successor-recipe and emission-plan memos live on the root and are
    shared (by reference) with every derived state, so the root's sizes
    are the run's.  Without a machine the gauges read zero.
    """
    if machine is None:
        return {"packed.recipes": 0, "packed.plans": 0}
    return {
        "packed.recipes": len(machine._skmemo),
        "packed.plans": len(machine._skplans),
    }
