"""Local and global operation logs (§3–§4).

The PUSH/PULL model has no concrete state: the shared state is a *global
log* ``G : list (op × g)`` whose flags distinguish committed (``gCmt``) from
uncommitted (``gUCmt``) operations, and each thread carries a *local log*
``L : list (op × l)`` whose flags record whether an applied operation has
been pushed:

* ``npshd c`` — applied locally, not pushed; ``c`` is the code that was
  active when the entry was created (so UNAPP can rewind to it);
* ``pshd c``  — applied and pushed (``c`` likewise saved);
* ``pld``     — pulled from the global log (someone else's operation).

This module implements the logs, the lifted set operations (``∈``, ``∖``,
``⊆``, ``∩`` — all by operation id, order preserved by the first operand),
the projections ``⌊L⌋_l`` / ``⌊G⌋_g`` and the commit transformer
``cmt(G, L, G')`` from the bottom of Figure 5.

Logs are immutable (tuples under the hood): machine steps build new logs,
which is what makes the model checker's state hashing and the rewind
relations of §5.4 cheap and safe.

Both log classes are *persistent* in the incremental-kernel sense: every
derived log is a new node sharing its entry objects with the parent, and
each node lazily caches its membership index (``op_id → position``), its
hash, and every projection the Figure 5 criteria consult (``⌊L⌋_npshd``,
``⌊G⌋_gCmt``, ``ids()``, ``all_ops()``).  Derivations that preserve
positions (``set_flag``, ``cmt``) share the parent's index outright and
appends extend it by one entry, so repeated criterion queries cost O(1)
after the first computation instead of O(n) per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, Tuple, Union

from repro.core.errors import LogError
from repro.core.ops import Op, payload_class_id
from repro.core.packed import pack_codes, pack_u32

# ---------------------------------------------------------------------------
# Local-log flags
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NotPushed:
    """Flag ``npshd c``: locally applied, not yet in the global log."""

    saved_code: Any = None
    saved_stack: Any = None

    def __repr__(self) -> str:
        return "npshd"


@dataclass(frozen=True)
class Pushed:
    """Flag ``pshd c``: locally applied and present in the global log."""

    saved_code: Any = None
    saved_stack: Any = None

    def __repr__(self) -> str:
        return "pshd"


@dataclass(frozen=True)
class Pulled:
    """Flag ``pld``: pulled from the global log (another thread's op)."""

    def __repr__(self) -> str:
        return "pld"


LocalFlag = Union[NotPushed, Pushed, Pulled]

#: flag *kind* names (the saved code/stack inside ``npshd``/``pshd`` flags
#: is bookkeeping, not state identity — see ``LocalLog.flag_rows``).
_FLAG_KIND = {NotPushed: "npshd", Pushed: "pshd", Pulled: "pld"}

#: packed flag-kind codes (the low two bits of a local row code — must
#: match ``repro.core.packed.KIND_NAMES`` order).
_FLAG_CODE = {NotPushed: 0, Pushed: 1, Pulled: 2}

# ---------------------------------------------------------------------------
# Global-log flags
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Uncommitted:
    """Flag ``gUCmt``: pushed by a transaction that has not committed."""

    def __repr__(self) -> str:
        return "gUCmt"


@dataclass(frozen=True)
class Committed:
    """Flag ``gCmt``: the owning transaction has committed."""

    def __repr__(self) -> str:
        return "gCmt"


GlobalFlag = Union[Uncommitted, Committed]

UNCOMMITTED = Uncommitted()
COMMITTED = Committed()
PULLED = Pulled()


@dataclass(frozen=True)
class LocalEntry:
    """One local-log element ``[op, l]``."""

    op: Op
    flag: LocalFlag

    @property
    def is_pushed(self) -> bool:
        return isinstance(self.flag, Pushed)

    @property
    def is_not_pushed(self) -> bool:
        return isinstance(self.flag, NotPushed)

    @property
    def is_pulled(self) -> bool:
        return isinstance(self.flag, Pulled)

    @property
    def is_own(self) -> bool:
        """Whether the entry is the thread's own operation (pshd | npshd)."""
        return not self.is_pulled


@dataclass(frozen=True)
class GlobalEntry:
    """One global-log element ``(op, g)``."""

    op: Op
    flag: GlobalFlag

    @property
    def is_committed(self) -> bool:
        return isinstance(self.flag, Committed)


# ---------------------------------------------------------------------------
# Local log
# ---------------------------------------------------------------------------


class LocalLog:
    """An immutable, persistent local log ``L : list (op × l)``.

    Entry objects are shared between a log and every log derived from it;
    the membership index, hash and projections are computed at most once
    per node and shared forward where the derivation preserves positions.
    """

    __slots__ = ("_entries", "_hash", "_index", "_proj")

    def __init__(self, entries: Iterable[LocalEntry] = ()):
        self._entries: Tuple[LocalEntry, ...] = tuple(entries)
        self._hash: Optional[int] = None
        self._index: Optional[dict] = None
        self._proj: Optional[dict] = None

    @classmethod
    def _make(
        cls, entries: Tuple[LocalEntry, ...], index: Optional[dict] = None
    ) -> "LocalLog":
        """Internal node constructor: adopt ``entries`` (already a tuple)
        and optionally a position index inherited from the parent node."""
        log = cls.__new__(cls)
        log._entries = entries
        log._hash = None
        log._index = index
        log._proj = None
        return log

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LocalEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> LocalEntry:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocalLog):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        # Hash from the memoized identity/payload columns rather than the
        # deep entry tuple: consistent with __eq__ (equal logs have equal
        # ids and codes), and collisions — logs differing only in saved
        # flags — fall back to the (identity-shortcutting) entry compare.
        cached = self._hash
        if cached is None:
            cached = self._hash = hash(
                (self.packed(), tuple(self._positions()))
            )
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"[{e.op.pretty()}, {e.flag!r}]" for e in self)
        return f"LocalLog({body})"

    @property
    def entries(self) -> Tuple[LocalEntry, ...]:
        return self._entries

    # -- membership (by id, per the paper's lifting) -----------------------

    def _positions(self) -> dict:
        """The cached ``op_id → position`` index (built on first use)."""
        index = self._index
        if index is None:
            index = self._index = {
                e.op.op_id: i for i, e in enumerate(self._entries)
            }
        return index

    def _projection(self, name: str, value_fn: Callable[[], Any]) -> Any:
        """Memoise ``value_fn()`` under ``name`` in the node's cache dict.

        The cache dict is shared by several key families, so projection
        names are namespaced: every string key carries a ``"L."`` prefix
        (``"G."`` on :class:`GlobalLog`), and non-projection families —
        removal memos ``("rm", id)``, ownership rows ``("ownb", own)``,
        per-cache denotation slots — use tuple keys, which can never
        collide with any string.  Callers pass the fully namespaced name.
        """
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get(name)
        if got is None:
            got = proj[name] = value_fn()
        return got

    def __contains__(self, op: Op) -> bool:
        return op.op_id in self._positions()

    def ids(self) -> frozenset:
        return self._projection("L.ids", lambda: frozenset(self._positions()))

    def entry_for(self, op: Op) -> Optional[LocalEntry]:
        position = self._positions().get(op.op_id)
        return None if position is None else self._entries[position]

    def index_of(self, op: Op) -> int:
        position = self._positions().get(op.op_id)
        if position is None:
            raise LogError(f"operation {op.pretty()} not in local log")
        return position

    # -- construction -------------------------------------------------------

    def append(self, op: Op, flag: LocalFlag) -> "LocalLog":
        positions = self._positions()
        if op.op_id in positions:
            raise LogError(f"duplicate operation id {op.op_id} in local log")
        index = dict(positions)
        index[op.op_id] = len(self._entries)
        child = LocalLog._make(self._entries + (LocalEntry(op, flag),), index)
        proj = self._proj
        if proj:
            # Appends extend the parent's row projections by one element.
            inherited = {}
            pkey = proj.get("L.pkey")
            if pkey is not None:
                inherited["L.pkey"] = pkey + (payload_class_id(op),)
            frows = proj.get("L.frows")
            if frows is not None:
                inherited["L.frows"] = frows + (
                    (op.method, op.args, op.ret, _FLAG_KIND[type(flag)]),
                )
            codes = proj.get("L.codes")
            if codes is not None:
                new_code = (payload_class_id(op) << 2) | _FLAG_CODE[type(flag)]
                inherited["L.codes"] = codes + (new_code,)
                packed = proj.get("L.pk")
                if packed is not None:
                    inherited["L.pk"] = packed + pack_u32(new_code)
            if inherited:
                child._proj = inherited
        return child

    def drop_last(self) -> "LocalLog":
        if not self._entries:
            raise LogError("cannot drop from empty local log")
        child = LocalLog._make(self._entries[:-1])
        proj = self._proj
        if proj:
            inherited = {}
            for name in ("L.pkey", "L.frows", "L.codes"):
                rows = proj.get(name)
                if rows is not None:
                    inherited[name] = rows[:-1]
            packed = proj.get("L.pk")
            if packed is not None:
                inherited["L.pk"] = packed[:-4]
            if inherited:
                child._proj = inherited
        return child

    def remove(self, op: Op) -> "LocalLog":
        """Remove the entry for ``op`` (by id).

        The child node is memoized per removed id: UNPULL's criterion check
        and its construction both derive the same shrunk log, as do repeated
        enabledness probes of the same (immutable) state, so they all share
        one node — and therefore one set of cached projections."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        key = ("rm", op.op_id)
        child = proj.get(key)
        if child is None:
            idx = self.index_of(op)
            child = proj[key] = LocalLog._make(
                self._entries[:idx] + self._entries[idx + 1 :]
            )
            inherited = {}
            for name in ("L.pkey", "L.frows", "L.codes"):
                rows = proj.get(name)
                if rows is not None:
                    inherited[name] = rows[:idx] + rows[idx + 1 :]
            packed = proj.get("L.pk")
            if packed is not None:
                inherited["L.pk"] = packed[: 4 * idx] + packed[4 * idx + 4 :]
            if inherited:
                child._proj = inherited
        return child

    def set_flag(self, op: Op, flag: LocalFlag) -> "LocalLog":
        idx = self.index_of(op)
        entry = LocalEntry(self._entries[idx].op, flag)
        # Positions are untouched, so the child shares the parent's index.
        child = LocalLog._make(
            self._entries[:idx] + (entry,) + self._entries[idx + 1 :], self._index
        )
        proj = self._proj
        if proj:
            # Flag flips keep the op sequence, so the payload key and the
            # full op tuple carry over unchanged; flag rows patch one row.
            inherited = {}
            for name in ("L.pkey", "L.all"):
                got = proj.get(name)
                if got is not None:
                    inherited[name] = got
            frows = proj.get("L.frows")
            if frows is not None:
                row = entry.op
                inherited["L.frows"] = (
                    frows[:idx]
                    + ((row.method, row.args, row.ret, _FLAG_KIND[type(flag)]),)
                    + frows[idx + 1 :]
                )
            codes = proj.get("L.codes")
            if codes is not None:
                new_code = (codes[idx] & ~3) | _FLAG_CODE[type(flag)]
                inherited["L.codes"] = codes[:idx] + (new_code,) + codes[idx + 1 :]
                packed = proj.get("L.pk")
                if packed is not None:
                    inherited["L.pk"] = (
                        packed[: 4 * idx] + pack_u32(new_code) + packed[4 * idx + 4 :]
                    )
            if inherited:
                child._proj = inherited
        return child

    def prefix(self, length: int) -> "LocalLog":
        return LocalLog._make(self._entries[:length])

    # -- projections ``⌊L⌋_l`` ----------------------------------------------

    def pushed_ops(self) -> Tuple[Op, ...]:
        """``⌊L⌋_pshd`` — own operations currently in the global log."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("L.pshd")
        if got is None:
            got = proj["L.pshd"] = tuple(
                e.op for e in self._entries if e.is_pushed
            )
        return got

    def not_pushed_ops(self) -> Tuple[Op, ...]:
        """``⌊L⌋_npshd`` — own operations not yet pushed."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("L.npshd")
        if got is None:
            got = proj["L.npshd"] = tuple(
                e.op for e in self._entries if e.is_not_pushed
            )
        return got

    def pulled_ops(self) -> Tuple[Op, ...]:
        """``⌊L⌋_pld`` — operations pulled from other transactions."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("L.pld")
        if got is None:
            got = proj["L.pld"] = tuple(
                e.op for e in self._entries if e.is_pulled
            )
        return got

    def own_ops(self) -> Tuple[Op, ...]:
        """``⌊L⌋_{pshd|npshd}`` — all of the thread's own operations."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("L.own")
        if got is None:
            got = proj["L.own"] = tuple(
                e.op for e in self._entries if e.is_own
            )
        return got

    # The accessors below are the kernel's hottest projections, so they
    # hand-inline ``_projection`` to avoid allocating a closure per call
    # on the (overwhelmingly common) cache-hit path.

    def all_ops(self) -> Tuple[Op, ...]:
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("L.all")
        if got is None:
            got = proj["L.all"] = tuple(e.op for e in self._entries)
        return got

    def payload_key(self) -> Tuple[int, ...]:
        """The log's payload-class id sequence (cached) — the denotation
        cache's key for ``[[ℓ]]``."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("L.pkey")
        if got is None:
            got = proj["L.pkey"] = tuple(
                payload_class_id(e.op) for e in self._entries
            )
        return got

    def flag_rows(self) -> Tuple[Tuple, ...]:
        """Per-entry ``(method, args, ret, flag-kind)`` digests (cached) —
        the id-free rows the object-level view of thread state keys
        consumes.  Derivations inherit these rows incrementally (append
        extends, set_flag patches one row, remove slices one out)."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("L.frows")
        if got is None:
            got = proj["L.frows"] = tuple(
                (e.op.method, e.op.args, e.op.ret, _FLAG_KIND[type(e.flag)])
                for e in self._entries
            )
        return got

    def codes(self) -> Tuple[int, ...]:
        """Packed per-entry row codes ``(payload_class << 2) | kind`` —
        the integer column the Figure 5 rule predicates scan (cached,
        inherited incrementally like ``flag_rows``)."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("L.codes")
        if got is None:
            got = proj["L.codes"] = tuple(
                (payload_class_id(e.op) << 2) | _FLAG_CODE[type(e.flag)]
                for e in self._entries
            )
        return got

    def packed(self) -> bytes:
        """The row codes as little-endian uint32 bytes — the flag-row
        component of packed thread state keys (cached; byte hashes are
        cached by CPython, unlike tuple hashes)."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("L.pk")
        if got is None:
            got = proj["L.pk"] = pack_codes(self.codes())
        return got

    # -- relations with a global log ----------------------------------------

    def contained_in(self, global_log: "GlobalLog") -> bool:
        """``L ⊆ G`` restricted to own operations?  (CMT criterion (ii)
        checks ``⌊L⌋_npshd = ∅`` via this in conjunction with I_LG; we expose
        the raw subset check over *all* own entries.)"""
        gids = global_log.ids()
        return all(e.op.op_id in gids for e in self._entries if e.is_own)


EMPTY_LOCAL = LocalLog()


# ---------------------------------------------------------------------------
# Global log
# ---------------------------------------------------------------------------


class GlobalLog:
    """An immutable, persistent global log ``G : list (op × g)``.

    Same caching discipline as :class:`LocalLog`: entry objects are shared
    with derived logs, and the index/hash/projections are cached per node
    (``cmt`` preserves positions and shares the parent's index).
    """

    __slots__ = ("_entries", "_hash", "_index", "_proj")

    def __init__(self, entries: Iterable[GlobalEntry] = ()):
        self._entries: Tuple[GlobalEntry, ...] = tuple(entries)
        self._hash: Optional[int] = None
        self._index: Optional[dict] = None
        self._proj: Optional[dict] = None

    @classmethod
    def _make(
        cls, entries: Tuple[GlobalEntry, ...], index: Optional[dict] = None
    ) -> "GlobalLog":
        log = cls.__new__(cls)
        log._entries = entries
        log._hash = None
        log._index = index
        log._proj = None
        return log

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[GlobalEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> GlobalEntry:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GlobalLog):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        # Same scheme as LocalLog.__hash__: hash the memoized columns,
        # let the rare collision fall back to the deep entry compare.
        cached = self._hash
        if cached is None:
            cached = self._hash = hash(
                (self.packed(), tuple(self._positions()))
            )
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"({e.op.pretty()}, {e.flag!r})" for e in self)
        return f"GlobalLog({body})"

    @property
    def entries(self) -> Tuple[GlobalEntry, ...]:
        return self._entries

    def _positions(self) -> dict:
        index = self._index
        if index is None:
            index = self._index = {
                e.op.op_id: i for i, e in enumerate(self._entries)
            }
        return index

    def _projection(self, name: str, value_fn: Callable[[], Any]) -> Any:
        """Memoise ``value_fn()`` under ``name`` (namespaced ``"G."`` —
        see :meth:`LocalLog._projection` for the key conventions)."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get(name)
        if got is None:
            got = proj[name] = value_fn()
        return got

    def __contains__(self, op: Op) -> bool:
        return op.op_id in self._positions()

    def ids(self) -> frozenset:
        return self._projection("G.ids", lambda: frozenset(self._positions()))

    def entry_for(self, op: Op) -> Optional[GlobalEntry]:
        position = self._positions().get(op.op_id)
        return None if position is None else self._entries[position]

    def index_of(self, op: Op) -> int:
        position = self._positions().get(op.op_id)
        if position is None:
            raise LogError(f"operation {op.pretty()} not in global log")
        return position

    # -- construction ---------------------------------------------------------

    def append(self, op: Op, flag: GlobalFlag = UNCOMMITTED) -> "GlobalLog":
        positions = self._positions()
        if op.op_id in positions:
            raise LogError(f"duplicate operation id {op.op_id} in global log")
        index = dict(positions)
        index[op.op_id] = len(self._entries)
        child = GlobalLog._make(self._entries + (GlobalEntry(op, flag),), index)
        # Appends extend the parent's row projections by one element, so a
        # child's canonical-key rows need not be rebuilt from scratch.
        proj = self._proj
        if proj:
            inherited = {}
            rows = proj.get("G.rows")
            if rows is not None:
                inherited["G.rows"] = rows + (
                    (op.method, op.args, op.ret, isinstance(flag, Committed)),
                )
            idrow = proj.get("G.idrow")
            if idrow is not None:
                inherited["G.idrow"] = idrow + (op.op_id,)
            pkey = proj.get("G.pkey")
            if pkey is not None:
                inherited["G.pkey"] = pkey + (payload_class_id(op),)
            codes = proj.get("G.codes")
            if codes is not None:
                new_code = (payload_class_id(op) << 1) | (
                    1 if isinstance(flag, Committed) else 0
                )
                inherited["G.codes"] = codes + (new_code,)
                packed = proj.get("G.pk")
                if packed is not None:
                    inherited["G.pk"] = packed + pack_u32(new_code)
            if inherited:
                child._proj = inherited
        return child

    def remove(self, op: Op) -> "GlobalLog":
        """Remove the entry for ``op`` (by id); the child node is memoized
        per removed id (UNPUSH checks and constructions share it)."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        key = ("rm", op.op_id)
        child = proj.get(key)
        if child is None:
            idx = self.index_of(op)
            child = proj[key] = GlobalLog._make(
                self._entries[:idx] + self._entries[idx + 1 :]
            )
            inherited = {}
            for name in ("G.rows", "G.idrow", "G.pkey", "G.codes"):
                rows = proj.get(name)
                if rows is not None:
                    inherited[name] = rows[:idx] + rows[idx + 1 :]
            packed = proj.get("G.pk")
            if packed is not None:
                inherited["G.pk"] = packed[: 4 * idx] + packed[4 * idx + 4 :]
            if inherited:
                child._proj = inherited
        return child

    # -- projections ``⌊G⌋_g`` -------------------------------------------------

    def committed_ops(self) -> Tuple[Op, ...]:
        """``⌊G⌋_gCmt``."""
        return self._projection(
            "G.gCmt", lambda: tuple(e.op for e in self._entries if e.is_committed)
        )

    def uncommitted_ops(self) -> Tuple[Op, ...]:
        """``⌊G⌋_gUCmt``."""
        return self._projection(
            "G.gUCmt",
            lambda: tuple(e.op for e in self._entries if not e.is_committed),
        )

    # Hand-inlined hot projections (no closure allocation on cache hits).

    def all_ops(self) -> Tuple[Op, ...]:
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("G.all")
        if got is None:
            got = proj["G.all"] = tuple(e.op for e in self._entries)
        return got

    def payload_rows(self) -> Tuple[Tuple, ...]:
        """Per-entry ``(method, args, ret, committed?)`` digests (cached) —
        the id-free rows the object-level view of state keys consumes."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("G.rows")
        if got is None:
            got = proj["G.rows"] = tuple(
                (e.op.method, e.op.args, e.op.ret, e.is_committed)
                for e in self._entries
            )
        return got

    def id_row(self) -> Tuple[int, ...]:
        """Per-entry operation ids, in log order (cached)."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("G.idrow")
        if got is None:
            got = proj["G.idrow"] = tuple(e.op.op_id for e in self._entries)
        return got

    def payload_key(self) -> Tuple[int, ...]:
        """The log's payload-class id sequence (cached)."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("G.pkey")
        if got is None:
            got = proj["G.pkey"] = tuple(
                payload_class_id(e.op) for e in self._entries
            )
        return got

    def codes(self) -> Tuple[int, ...]:
        """Packed per-entry row codes ``(payload_class << 1) | committed``
        — the integer column the rule predicates scan (cached, inherited
        incrementally: append extends, remove slices, commit patches)."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("G.codes")
        if got is None:
            got = proj["G.codes"] = tuple(
                (payload_class_id(e.op) << 1) | (1 if e.is_committed else 0)
                for e in self._entries
            )
        return got

    def packed(self) -> bytes:
        """The row codes as little-endian uint32 bytes — the global-log
        component of packed machine state keys (cached)."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        got = proj.get("G.pk")
        if got is None:
            got = proj["G.pk"] = pack_codes(self.codes())
        return got

    def own_bits(self, own: frozenset) -> Tuple[bool, ...]:
        """Which entries belong to a thread owning the id set ``own``
        (cached per set)."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        key = ("ownb", own)
        got = proj.get(key)
        if got is None:
            got = proj[key] = tuple(
                e.op.op_id in own for e in self._entries
            )
        return got

    def own_bytes(self, own: frozenset) -> bytes:
        """:meth:`own_bits` packed as one byte per entry (cached per set)
        — the ownership row of packed invariant memo keys."""
        proj = self._proj
        if proj is None:
            proj = self._proj = {}
        key = ("ownbp", own)
        got = proj.get(key)
        if got is None:
            got = proj[key] = bytes(
                1 if e.op.op_id in own else 0 for e in self._entries
            )
        return got

    # -- lifted set operations (order from self) --------------------------------

    def minus(self, ops: Iterable[Op]) -> "GlobalLog":
        """``G ∖ ops`` — drop (by id) every member of ``ops``; order kept."""
        drop = {o.op_id for o in ops}
        return GlobalLog._make(
            tuple(e for e in self._entries if e.op.op_id not in drop)
        )

    def intersect_ops(self, ops: Iterable[Op]) -> Tuple[Op, ...]:
        """``G ∩ ops`` as an operation sequence, ordered as in ``G``."""
        keep = {o.op_id for o in ops}
        return tuple(e.op for e in self._entries if e.op.op_id in keep)

    def commit(self, local: LocalLog) -> "GlobalLog":
        """The ``cmt(G, L, G')`` transformer from Figure 5.

        ``G'`` equals ``G`` except every operation that ``L`` pushed is
        flagged ``gCmt``.  Raises if some pushed entry is missing from ``G``
        (an ``I_LG`` violation — a driver bug).
        """
        pushed = {o.op_id for o in local.pushed_ops()}
        present = self.ids()
        missing = pushed - present
        if missing:
            raise LogError(f"cmt: pushed operations {sorted(missing)} not in G")
        new_entries = []
        for e in self._entries:
            if e.op.op_id in pushed:
                new_entries.append(GlobalEntry(e.op, COMMITTED))
            else:
                new_entries.append(e)
        # Flag flips keep every position, so the index carries over — and
        # so do the id/payload projections (flags are not part of them).
        child = GlobalLog._make(tuple(new_entries), self._index)
        proj = self._proj
        if proj:
            inherited = {
                name: proj[name]
                for name in ("G.idrow", "G.pkey")
                if name in proj
            }
            codes = proj.get("G.codes")
            if codes is not None:
                positions = self._positions()
                flips = {positions[i] for i in pushed}
                new_codes = tuple(
                    c | 1 if i in flips else c for i, c in enumerate(codes)
                )
                inherited["G.codes"] = new_codes
                if proj.get("G.pk") is not None:
                    inherited["G.pk"] = pack_codes(new_codes)
            if inherited:
                child._proj = inherited
        return child

    def committed_only(self) -> "GlobalLog":
        """``filter (λ(op,g). g = gCmt) G`` — used by the CMT simulation case."""
        return GlobalLog._make(
            tuple(e for e in self._entries if e.is_committed)
        )


EMPTY_GLOBAL = GlobalLog()


def ops_minus(ops: Iterable[Op], drop: Iterable[Op]) -> Tuple[Op, ...]:
    """Sequence difference by id, order preserved from ``ops``."""
    drop_ids = {o.op_id for o in drop}
    return tuple(o for o in ops if o.op_id not in drop_ids)
