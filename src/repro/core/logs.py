"""Local and global operation logs (§3–§4).

The PUSH/PULL model has no concrete state: the shared state is a *global
log* ``G : list (op × g)`` whose flags distinguish committed (``gCmt``) from
uncommitted (``gUCmt``) operations, and each thread carries a *local log*
``L : list (op × l)`` whose flags record whether an applied operation has
been pushed:

* ``npshd c`` — applied locally, not pushed; ``c`` is the code that was
  active when the entry was created (so UNAPP can rewind to it);
* ``pshd c``  — applied and pushed (``c`` likewise saved);
* ``pld``     — pulled from the global log (someone else's operation).

This module implements the logs, the lifted set operations (``∈``, ``∖``,
``⊆``, ``∩`` — all by operation id, order preserved by the first operand),
the projections ``⌊L⌋_l`` / ``⌊G⌋_g`` and the commit transformer
``cmt(G, L, G')`` from the bottom of Figure 5.

Logs are immutable (tuples under the hood): machine steps build new logs,
which is what makes the model checker's state hashing and the rewind
relations of §5.4 cheap and safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, Tuple, Union

from repro.core.errors import LogError
from repro.core.ops import Op

# ---------------------------------------------------------------------------
# Local-log flags
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NotPushed:
    """Flag ``npshd c``: locally applied, not yet in the global log."""

    saved_code: Any = None
    saved_stack: Any = None

    def __repr__(self) -> str:
        return "npshd"


@dataclass(frozen=True)
class Pushed:
    """Flag ``pshd c``: locally applied and present in the global log."""

    saved_code: Any = None
    saved_stack: Any = None

    def __repr__(self) -> str:
        return "pshd"


@dataclass(frozen=True)
class Pulled:
    """Flag ``pld``: pulled from the global log (another thread's op)."""

    def __repr__(self) -> str:
        return "pld"


LocalFlag = Union[NotPushed, Pushed, Pulled]

# ---------------------------------------------------------------------------
# Global-log flags
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Uncommitted:
    """Flag ``gUCmt``: pushed by a transaction that has not committed."""

    def __repr__(self) -> str:
        return "gUCmt"


@dataclass(frozen=True)
class Committed:
    """Flag ``gCmt``: the owning transaction has committed."""

    def __repr__(self) -> str:
        return "gCmt"


GlobalFlag = Union[Uncommitted, Committed]

UNCOMMITTED = Uncommitted()
COMMITTED = Committed()
PULLED = Pulled()


@dataclass(frozen=True)
class LocalEntry:
    """One local-log element ``[op, l]``."""

    op: Op
    flag: LocalFlag

    @property
    def is_pushed(self) -> bool:
        return isinstance(self.flag, Pushed)

    @property
    def is_not_pushed(self) -> bool:
        return isinstance(self.flag, NotPushed)

    @property
    def is_pulled(self) -> bool:
        return isinstance(self.flag, Pulled)

    @property
    def is_own(self) -> bool:
        """Whether the entry is the thread's own operation (pshd | npshd)."""
        return not self.is_pulled


@dataclass(frozen=True)
class GlobalEntry:
    """One global-log element ``(op, g)``."""

    op: Op
    flag: GlobalFlag

    @property
    def is_committed(self) -> bool:
        return isinstance(self.flag, Committed)


# ---------------------------------------------------------------------------
# Local log
# ---------------------------------------------------------------------------


class LocalLog:
    """An immutable local log ``L : list (op × l)``."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[LocalEntry] = ()):
        self._entries: Tuple[LocalEntry, ...] = tuple(entries)

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LocalEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> LocalEntry:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocalLog):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"[{e.op.pretty()}, {e.flag!r}]" for e in self)
        return f"LocalLog({body})"

    @property
    def entries(self) -> Tuple[LocalEntry, ...]:
        return self._entries

    # -- membership (by id, per the paper's lifting) -----------------------

    def __contains__(self, op: Op) -> bool:
        return any(e.op.op_id == op.op_id for e in self._entries)

    def ids(self) -> frozenset:
        return frozenset(e.op.op_id for e in self._entries)

    def entry_for(self, op: Op) -> Optional[LocalEntry]:
        for e in self._entries:
            if e.op.op_id == op.op_id:
                return e
        return None

    def index_of(self, op: Op) -> int:
        for i, e in enumerate(self._entries):
            if e.op.op_id == op.op_id:
                return i
        raise LogError(f"operation {op.pretty()} not in local log")

    # -- construction -------------------------------------------------------

    def append(self, op: Op, flag: LocalFlag) -> "LocalLog":
        if op in self:
            raise LogError(f"duplicate operation id {op.op_id} in local log")
        return LocalLog(self._entries + (LocalEntry(op, flag),))

    def drop_last(self) -> "LocalLog":
        if not self._entries:
            raise LogError("cannot drop from empty local log")
        return LocalLog(self._entries[:-1])

    def remove(self, op: Op) -> "LocalLog":
        """Remove the entry for ``op`` (by id)."""
        idx = self.index_of(op)
        return LocalLog(self._entries[:idx] + self._entries[idx + 1 :])

    def set_flag(self, op: Op, flag: LocalFlag) -> "LocalLog":
        idx = self.index_of(op)
        entry = LocalEntry(self._entries[idx].op, flag)
        return LocalLog(self._entries[:idx] + (entry,) + self._entries[idx + 1 :])

    def prefix(self, length: int) -> "LocalLog":
        return LocalLog(self._entries[:length])

    # -- projections ``⌊L⌋_l`` ----------------------------------------------

    def _project(self, pred: Callable[[LocalEntry], bool]) -> Tuple[Op, ...]:
        return tuple(e.op for e in self._entries if pred(e))

    def pushed_ops(self) -> Tuple[Op, ...]:
        """``⌊L⌋_pshd`` — own operations currently in the global log."""
        return self._project(lambda e: e.is_pushed)

    def not_pushed_ops(self) -> Tuple[Op, ...]:
        """``⌊L⌋_npshd`` — own operations not yet pushed."""
        return self._project(lambda e: e.is_not_pushed)

    def pulled_ops(self) -> Tuple[Op, ...]:
        """``⌊L⌋_pld`` — operations pulled from other transactions."""
        return self._project(lambda e: e.is_pulled)

    def own_ops(self) -> Tuple[Op, ...]:
        """``⌊L⌋_{pshd|npshd}`` — all of the thread's own operations."""
        return self._project(lambda e: e.is_own)

    def all_ops(self) -> Tuple[Op, ...]:
        return tuple(e.op for e in self._entries)

    # -- relations with a global log ----------------------------------------

    def contained_in(self, global_log: "GlobalLog") -> bool:
        """``L ⊆ G`` restricted to own operations?  (CMT criterion (ii)
        checks ``⌊L⌋_npshd = ∅`` via this in conjunction with I_LG; we expose
        the raw subset check over *all* own entries.)"""
        gids = global_log.ids()
        return all(e.op.op_id in gids for e in self._entries if e.is_own)


EMPTY_LOCAL = LocalLog()


# ---------------------------------------------------------------------------
# Global log
# ---------------------------------------------------------------------------


class GlobalLog:
    """An immutable global log ``G : list (op × g)``."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[GlobalEntry] = ()):
        self._entries: Tuple[GlobalEntry, ...] = tuple(entries)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[GlobalEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> GlobalEntry:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GlobalLog):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"({e.op.pretty()}, {e.flag!r})" for e in self)
        return f"GlobalLog({body})"

    @property
    def entries(self) -> Tuple[GlobalEntry, ...]:
        return self._entries

    def __contains__(self, op: Op) -> bool:
        return any(e.op.op_id == op.op_id for e in self._entries)

    def ids(self) -> frozenset:
        return frozenset(e.op.op_id for e in self._entries)

    def entry_for(self, op: Op) -> Optional[GlobalEntry]:
        for e in self._entries:
            if e.op.op_id == op.op_id:
                return e
        return None

    def index_of(self, op: Op) -> int:
        for i, e in enumerate(self._entries):
            if e.op.op_id == op.op_id:
                return i
        raise LogError(f"operation {op.pretty()} not in global log")

    # -- construction ---------------------------------------------------------

    def append(self, op: Op, flag: GlobalFlag = UNCOMMITTED) -> "GlobalLog":
        if op in self:
            raise LogError(f"duplicate operation id {op.op_id} in global log")
        return GlobalLog(self._entries + (GlobalEntry(op, flag),))

    def remove(self, op: Op) -> "GlobalLog":
        idx = self.index_of(op)
        return GlobalLog(self._entries[:idx] + self._entries[idx + 1 :])

    # -- projections ``⌊G⌋_g`` -------------------------------------------------

    def committed_ops(self) -> Tuple[Op, ...]:
        """``⌊G⌋_gCmt``."""
        return tuple(e.op for e in self._entries if e.is_committed)

    def uncommitted_ops(self) -> Tuple[Op, ...]:
        """``⌊G⌋_gUCmt``."""
        return tuple(e.op for e in self._entries if not e.is_committed)

    def all_ops(self) -> Tuple[Op, ...]:
        return tuple(e.op for e in self._entries)

    # -- lifted set operations (order from self) --------------------------------

    def minus(self, ops: Iterable[Op]) -> "GlobalLog":
        """``G ∖ ops`` — drop (by id) every member of ``ops``; order kept."""
        drop = {o.op_id for o in ops}
        return GlobalLog(e for e in self._entries if e.op.op_id not in drop)

    def intersect_ops(self, ops: Iterable[Op]) -> Tuple[Op, ...]:
        """``G ∩ ops`` as an operation sequence, ordered as in ``G``."""
        keep = {o.op_id for o in ops}
        return tuple(e.op for e in self._entries if e.op.op_id in keep)

    def commit(self, local: LocalLog) -> "GlobalLog":
        """The ``cmt(G, L, G')`` transformer from Figure 5.

        ``G'`` equals ``G`` except every operation that ``L`` pushed is
        flagged ``gCmt``.  Raises if some pushed entry is missing from ``G``
        (an ``I_LG`` violation — a driver bug).
        """
        pushed = {o.op_id for o in local.pushed_ops()}
        present = self.ids()
        missing = pushed - present
        if missing:
            raise LogError(f"cmt: pushed operations {sorted(missing)} not in G")
        new_entries = []
        for e in self._entries:
            if e.op.op_id in pushed:
                new_entries.append(GlobalEntry(e.op, COMMITTED))
            else:
                new_entries.append(e)
        return GlobalLog(new_entries)

    def committed_only(self) -> "GlobalLog":
        """``filter (λ(op,g). g = gCmt) G`` — used by the CMT simulation case."""
        return GlobalLog(e for e in self._entries if e.is_committed)


EMPTY_GLOBAL = GlobalLog()


def ops_minus(ops: Iterable[Op], drop: Iterable[Op]) -> Tuple[Op, ...]:
    """Sequence difference by id, order preserved from ``ops``."""
    drop_ids = {o.op_id for o in drop}
    return tuple(o for o in ops if o.op_id not in drop_ids)
