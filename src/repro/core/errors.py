"""Exception hierarchy for the PUSH/PULL reproduction.

Every rule of the PUSH/PULL machine (Figure 5 of the paper) carries side
conditions ("criteria").  When a criterion fails at runtime the machine
raises :class:`CriterionViolation`, naming the rule and the criterion number
exactly as the paper does (e.g. ``PUSH criterion (ii)``).  TM algorithm
drivers catch these to trigger aborts; the test-suite asserts on them to
pin down *which* condition a misbehaving schedule trips.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SpecError(ReproError):
    """A sequential specification was used incorrectly (e.g. an operation
    name the specification does not know about)."""


class LogError(ReproError):
    """Malformed log manipulation (e.g. removing an operation that is not
    present, or duplicate operation identifiers)."""


class LanguageError(ReproError):
    """Malformed program in the transaction language (e.g. a method call
    occurring outside any ``tx`` block)."""


class MachineError(ReproError):
    """A PUSH/PULL machine step was attempted from a state in which the
    step's *structural* premises do not hold (distinct from a criterion
    violation: structural errors indicate driver bugs, criteria indicate
    genuinely disallowed behaviours)."""


class CriterionViolation(MachineError):
    """A rule's side-condition failed.

    Attributes
    ----------
    rule:
        Rule name as written in the paper: ``"APP"``, ``"UNAPP"``,
        ``"PUSH"``, ``"UNPUSH"``, ``"PULL"``, ``"UNPULL"``, ``"CMT"``.
    criterion:
        Roman-numeral criterion label from Figure 5, e.g. ``"ii"``.
    """

    def __init__(self, rule: str, criterion: str, detail: str = ""):
        self.rule = rule
        self.criterion = criterion
        self.detail = detail
        message = f"{rule} criterion ({criterion}) violated"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class TMAbort(ReproError):
    """Raised inside a TM algorithm to signal that the current transaction
    must abort (and typically retry).  Carries the reason for statistics."""

    def __init__(self, reason: str = "conflict"):
        self.reason = reason
        super().__init__(f"transaction aborted: {reason}")


class SerializabilityViolation(ReproError):
    """A checker found a committed history with no equivalent atomic
    (serial) execution.  If this is ever raised on a machine-driven run it
    indicates a bug — Theorem 5.17 says it cannot happen."""


class OpacityViolation(ReproError):
    """A checker found an execution outside the opaque fragment whose
    intermediate reads are not justified by any serial prefix (§6.1)."""
