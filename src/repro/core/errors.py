"""Exception hierarchy for the PUSH/PULL reproduction.

Every rule of the PUSH/PULL machine (Figure 5 of the paper) carries side
conditions ("criteria").  When a criterion fails at runtime the machine
raises :class:`CriterionViolation`, naming the rule and the criterion number
exactly as the paper does (e.g. ``PUSH criterion (ii)``).  TM algorithm
drivers catch these to trigger aborts; the test-suite asserts on them to
pin down *which* condition a misbehaving schedule trips.
"""

from __future__ import annotations

import enum


class AbortKind(enum.Enum):
    """Structured classification of transaction aborts.

    Drivers attach a kind to every :class:`TMAbort`; the stepper copies it
    onto the history's :class:`~repro.core.history.TxRecord`, so metrics
    and traces can aggregate aborts without parsing reason strings.
    """

    #: a rule criterion failed against concurrent work (the generic
    #: optimistic-conflict abort: APP/PUSH/PULL refused)
    CONFLICT = "conflict"
    #: commit-time validation failed (TL2-style dry-run PUSH, CMT refusal)
    VALIDATION = "validation"
    #: a producer this transaction pulled uncommitted work from aborted
    #: (§6.5 cascading detangle)
    CASCADE = "cascade"
    #: a wait budget was exhausted (lock timeout, dependency/publication
    #: starvation)
    STARVATION = "starvation"
    #: a simulated hardware capacity limit was exceeded (retrying the same
    #: transaction in hardware cannot succeed)
    CAPACITY = "capacity"
    #: driver-requested abort that fits no category above
    EXPLICIT = "explicit"
    #: a fault deliberately injected by the :mod:`repro.faults` nemesis
    #: (forced abort, simulated crash, dropped publication, ...); always a
    #: *clean* abort — the generic rollback runs and the machine state
    #: stays criterion-consistent
    INJECTED = "injected"


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SpecError(ReproError):
    """A sequential specification was used incorrectly (e.g. an operation
    name the specification does not know about)."""


class LogError(ReproError):
    """Malformed log manipulation (e.g. removing an operation that is not
    present, or duplicate operation identifiers)."""


class LanguageError(ReproError):
    """Malformed program in the transaction language (e.g. a method call
    occurring outside any ``tx`` block)."""


class MachineError(ReproError):
    """A PUSH/PULL machine step was attempted from a state in which the
    step's *structural* premises do not hold (distinct from a criterion
    violation: structural errors indicate driver bugs, criteria indicate
    genuinely disallowed behaviours)."""


class CriterionViolation(MachineError):
    """A rule's side-condition failed.

    Attributes
    ----------
    rule:
        Rule name as written in the paper: ``"APP"``, ``"UNAPP"``,
        ``"PUSH"``, ``"UNPUSH"``, ``"PULL"``, ``"UNPULL"``, ``"CMT"``.
    criterion:
        Roman-numeral criterion label from Figure 5, e.g. ``"ii"``.
    """

    def __init__(self, rule: str, criterion: str, detail: str = ""):
        self.rule = rule
        self.criterion = criterion
        self.detail = detail
        message = f"{rule} criterion ({criterion}) violated"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class TMAbort(ReproError):
    """Raised inside a TM algorithm to signal that the current transaction
    must abort (and typically retry).  Carries a human-readable reason for
    messages plus a structured :class:`AbortKind` for statistics."""

    def __init__(self, reason: str = "conflict", kind: AbortKind = AbortKind.CONFLICT):
        self.reason = reason
        self.kind = kind
        super().__init__(f"transaction aborted: {reason}")


class SerializabilityViolation(ReproError):
    """A checker found a committed history with no equivalent atomic
    (serial) execution.  If this is ever raised on a machine-driven run it
    indicates a bug — Theorem 5.17 says it cannot happen."""


class OpacityViolation(ReproError):
    """A checker found an execution outside the opaque fragment whose
    intermediate reads are not justified by any serial prefix (§6.1)."""
