"""Log precongruence ``≼`` (Def. 3.1) and movers ``◁``/``▷`` (Def. 4.1).

The paper defines ``ℓ1 ≼ ℓ2`` coinductively: ``allowed ℓ1 ⇒ allowed ℓ2``
and for every operation ``op``, ``ℓ1·op ≼ ℓ2·op`` — i.e. no sequence of
observations of ``ℓ1`` is impossible for ``ℓ2`` (greatest fixpoint, so the
property is "up to all infinite suffixes").

Deciding a greatest fixpoint over *all* operation extensions is not
computable for arbitrary specifications, so this module offers a layered
strategy, from exact to bounded:

1. :class:`~repro.core.spec.StateSpec` admits an **exact** check: a
   deterministic denotation collapses the coinduction to "ℓ1 disallowed, or
   both allowed with observationally equal final states" (see
   ``StateSpec.precongruent``).
2. For relational specs, :func:`precongruent_bounded` unrolls the
   coinductive definition to depth ``k`` over a finite probe universe
   (``spec.probe_ops()``).  This is sound for refutation (a failure at any
   depth is a genuine ``⋠``) and, for finite-state specs whose probe set
   reaches every transition, complete at depth ≥ the state-space diameter.

The mover relations follow the same pattern: exact oracles on
:class:`StateSpec` (Definition 4.1 quantifies over every log ``ℓ``, which a
spec resolves by quantifying over its reachable states), and a bounded
fallback :func:`left_mover_bounded` quantifying over probe logs.

Lifted/list forms used by the machine criteria are provided at the bottom:
``left_mover_list_op`` (ℓ ◁ op), ``op_left_mover_list`` (op ◁ ℓ), etc.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.ops import Op
from repro.core.spec import (
    NondetSpec,
    SequentialSpec,
    StateSpec,
    shared_denotations,
    shared_movers,
)
from repro.obs.tracer import CAT_MOVER, NULL_TRACER, Tracer


# ---------------------------------------------------------------------------
# Precongruence
# ---------------------------------------------------------------------------


def precongruent(
    spec: SequentialSpec,
    l1: Sequence[Op],
    l2: Sequence[Op],
    depth: int = 3,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """``ℓ1 ≼ ℓ2`` — exact for :class:`StateSpec`, bounded otherwise.

    With an enabled tracer each query becomes a ``precongruent`` span in
    the ``mover`` category (the oracle family the paper's criteria and the
    simulation check both lean on), tagged with the log lengths and the
    strategy used — the data needed to see whether ``≼`` checks or mover
    checks dominate a model-checking run.

    Both strategies evaluate against the spec's shared denotation cache
    (``[[ℓ]]`` keyed by payload classes), so a ``≼`` query over logs whose
    prefixes were already denoted costs dictionary hits, not replays.
    """
    if not tracer.enabled:
        if isinstance(spec, StateSpec):
            return shared_denotations(spec).precongruent(l1, l2)
        return precongruent_bounded(spec, l1, l2, depth)
    start = tracer.now()
    exact = isinstance(spec, StateSpec)
    if exact:
        result = shared_denotations(spec, tracer).precongruent(l1, l2)
    else:
        result = precongruent_bounded(spec, l1, l2, depth)
    tracer.span(
        "precongruent",
        CAT_MOVER,
        start,
        args={
            "len1": len(l1),
            "len2": len(l2),
            "exact": exact,
            "result": result,
        },
    )
    return result


def precongruent_bounded(
    spec: SequentialSpec,
    l1: Sequence[Op],
    l2: Sequence[Op],
    depth: int,
    probes: Optional[Sequence[Op]] = None,
) -> bool:
    """Unroll Definition 3.1 to ``depth`` over the probe universe.

    At each level we check the implication ``allowed ℓ1 ⇒ allowed ℓ2`` and
    recurse on every single-probe extension.  ``depth`` bounds the suffix
    length considered; probes default to ``spec.probe_ops()``.

    ``allowed`` queries go through the spec's shared denotation cache, and
    ``allowed ℓ1`` is evaluated once per recursion level (it used to be
    replayed twice — once for the implication, once for the prefix-closure
    cut).
    """
    if probes is None:
        probes = tuple(spec.probe_ops())
    l1 = tuple(l1)
    l2 = tuple(l2)
    denots = shared_denotations(spec)
    l1_allowed = denots.allowed(l1)
    if l1_allowed and not denots.allowed(l2):
        return False
    if depth == 0:
        return True
    # Prefix closure: once ℓ1 is disallowed every extension is disallowed,
    # so the implication holds vacuously at all deeper levels.
    if not l1_allowed:
        return True
    return all(
        precongruent_bounded(spec, l1 + (op,), l2 + (op,), depth - 1, probes)
        for op in probes
    )


def log_equivalent(
    spec: SequentialSpec, l1: Sequence[Op], l2: Sequence[Op], depth: int = 3
) -> bool:
    """Mutual precongruence ``ℓ1 ≼ ℓ2 ∧ ℓ2 ≼ ℓ1``."""
    return precongruent(spec, l1, l2, depth) and precongruent(spec, l2, l1, depth)


# ---------------------------------------------------------------------------
# Movers on single operations
# ---------------------------------------------------------------------------


def left_mover(spec: SequentialSpec, op1: Op, op2: Op) -> bool:
    """``op1 ◁ op2`` via the spec's shared mover memo (exact oracle where
    available) — the same memo the machine criteria consult."""
    return shared_movers(spec).left_mover(op1, op2)


def right_mover(spec: SequentialSpec, op1: Op, op2: Op) -> bool:
    """``op1 ▷ op2  ≡  op2 ◁ op1``."""
    return shared_movers(spec).left_mover(op2, op1)


def both_mover(spec: SequentialSpec, op1: Op, op2: Op) -> bool:
    """Full commutativity (both movers)."""
    movers = shared_movers(spec)
    return movers.left_mover(op1, op2) and movers.left_mover(op2, op1)


def left_mover_bounded(
    spec: SequentialSpec,
    op1: Op,
    op2: Op,
    context_depth: int = 2,
    suffix_depth: int = 2,
    probes: Optional[Sequence[Op]] = None,
) -> bool:
    """Bounded ground-truth check of Definition 4.1.

    Quantifies the context ``ℓ`` over all probe sequences of length up to
    ``context_depth`` and checks ``ℓ·op1·op2 ≼ ℓ·op2·op1`` with suffixes
    bounded by ``suffix_depth``.  Used by property tests to validate the
    exact per-spec oracles.
    """
    if probes is None:
        probes = tuple(spec.probe_ops())
    for n in range(context_depth + 1):
        for ctx in product(probes, repeat=n):
            l1 = tuple(ctx) + (op1, op2)
            l2 = tuple(ctx) + (op2, op1)
            if isinstance(spec, StateSpec):
                if not spec.precongruent(l1, l2):
                    return False
            elif not precongruent_bounded(spec, l1, l2, suffix_depth, probes):
                return False
    return True


# ---------------------------------------------------------------------------
# Trace normal forms (the POR quotient's representative function)
# ---------------------------------------------------------------------------


def trace_normal_form(items, commutes, sort_key) -> Tuple:
    """The lexicographically-least representative of ``items``'s
    Mazurkiewicz trace class under the independence relation ``commutes``.

    Two sequences are trace-equivalent when one rewrites into the other by
    swapping *adjacent* independent elements — exactly the both-mover
    swaps of Definition 4.1 when ``commutes`` is instantiated with the
    spec's mover oracle, in which case trace-equivalent logs are mutually
    ``≼`` (both-movers commute under every context, and ``≼`` is a
    precongruence, so the equivalence lifts from the swapped pair to the
    whole log).  The model checker's reduction layer keys visited states
    on this normal form, so all both-mover interleavings of the global log
    collapse to one explored representative.

    Greedy algorithm: repeatedly extract the ``sort_key``-least element
    that commutes with everything before it (a minimal element of the
    trace's dependence order).  The dependence order is an invariant of
    the class, so the result is canonical: equal on two sequences iff they
    are trace-equivalent.  O(n²) ``commutes`` queries; ``commutes`` must
    be symmetric, and ``sort_key`` a total order on the elements.
    """
    pending = list(items)
    if len(pending) < 2:
        return tuple(pending)
    out = []
    while pending:
        best_index = 0
        best_key = None
        for index, item in enumerate(pending):
            if any(
                not commutes(pending[j], item) for j in range(index)
            ):
                continue  # blocked: cannot slide to the front
            key = sort_key(item)
            if best_key is None or key < best_key:
                best_index, best_key = index, key
        out.append(pending.pop(best_index))
    return tuple(out)


# ---------------------------------------------------------------------------
# Lifted (list) forms used by the Figure 5 criteria
# ---------------------------------------------------------------------------


def op_left_mover_list(spec: SequentialSpec, op: Op, ops: Iterable[Op]) -> bool:
    """``op ◁ ℓ`` — ``op`` moves left of every operation in ``ops``.

    PUSH criterion (i) instantiates this with ``⌊L⌋_npshd``.
    """
    movers = shared_movers(spec)
    return all(movers.left_mover(op, other) for other in ops)


def list_left_mover_op(spec: SequentialSpec, ops: Iterable[Op], op: Op) -> bool:
    """``ℓ ◁ op`` — every operation in ``ops`` moves left of ``op``."""
    movers = shared_movers(spec)
    return all(movers.left_mover(other, op) for other in ops)


def list_right_mover_op(spec: SequentialSpec, ops: Iterable[Op], op: Op) -> bool:
    """``ℓ ▷ op`` — every operation of ``ops`` moves right of ``op``.

    PUSH criterion (ii) instantiates this with the *other* transactions'
    uncommitted operations; PULL criterion (iii) with the puller's own ops.
    """
    movers = shared_movers(spec)
    return all(movers.left_mover(op, other) for other in ops)


def serial_permutation_exists(
    spec: SequentialSpec, chunks: Sequence[Sequence[Op]], target: Sequence[Op]
) -> bool:
    """Whether some permutation of ``chunks`` (each chunk kept in order)
    yields a log observationally covering ``target`` (``target ≼ perm``).

    A brute-force serializability reference used by tests on tiny histories.
    """
    target = tuple(target)
    # ``allowed target`` is loop-invariant: when it fails no permutation can
    # succeed, so refuse up front instead of enumerating all |chunks|! orders.
    if not spec.allowed(target):
        return False
    for order in permutations(range(len(chunks))):
        candidate: List[Op] = []
        for index in order:
            candidate.extend(chunks[index])
        if precongruent(spec, target, tuple(candidate)) and spec.allowed(
            tuple(candidate)
        ):
            return True
    return False
